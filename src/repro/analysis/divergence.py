"""Thread-divergence analysis.

Determines which registers may hold thread-varying values and which branches
are therefore *divergent* (Section 2). Sources of divergence:

* thread identity (``tid``, ``lane``) and per-thread randomness (``rand``),
* atomics (``atomadd`` returns a distinct value per thread),
* loads through divergent addresses,
* values computed from divergent operands,
* *sync dependence*: registers (re)defined under divergent control — inside
  the influence region between a divergent branch and its immediate
  post-dominator — merge differently per thread at join points.

The analysis runs to a fixpoint because sync dependence can make more
branches divergent, which widens influence regions.

This powers the baseline PDOM synchronization pass (which barriers divergent
branches) and the automatic-detection heuristics of Section 4.5.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dominators import compute_post_dominators
from repro.ir.instructions import DIVERGENT_SOURCES, FuncRef, Opcode, Reg


def influence_region(view, pdom, branch_block):
    """Blocks divergently executed due to a branch in ``branch_block``.

    These are the blocks on paths from the branch's successors to (but
    excluding) the branch's immediate reconvergence point — nodes both
    reachable from a successor and able to reach the reconvergence point
    (or a function exit, for paths that leave early).
    """
    succs = view.succs[branch_block]
    if len(succs) < 2:
        return set()
    join = pdom.nearest_common_post_dominator(succs)
    region = set()
    for succ in succs:
        if succ == join:
            continue
        # Nodes reachable from the successor without passing through the
        # reconvergence point: DFS that never enters ``join``.
        seen = {succ}
        frontier = [succ]
        while frontier:
            node = frontier.pop()
            for nxt in view.succs[node]:
                if nxt != join and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        region |= seen
    region.discard(branch_block)
    return region


class DivergenceAnalysis:
    """Per-function divergence facts.

    Attributes:
        divergent_regs: set of :class:`Reg` that may be thread-varying.
        divergent_branches: set of block names whose terminator is a
            divergent conditional branch.
    """

    def __init__(self, function, module=None, callee_summaries=None):
        self.function = function
        self.module = module
        self.callee_summaries = callee_summaries or {}
        self.view = CFGView.of_function(function)
        self.pdom = compute_post_dominators(self.view)
        self.divergent_regs = set()
        self.divergent_branches = set()
        # Kernel parameters are uniform launch arguments; device-function
        # parameters are conservatively thread-varying (call sites may pass
        # divergent values).
        if not function.is_kernel:
            self.divergent_regs.update(function.params)
        self._solve()

    # ------------------------------------------------------------------
    def _instruction_result_divergent(self, instr):
        opcode = instr.opcode
        if opcode in DIVERGENT_SOURCES:
            return True
        if opcode is Opcode.LD:
            addr = instr.operands[0]
            return isinstance(addr, Reg) and addr in self.divergent_regs
        if opcode is Opcode.CALL:
            callee = instr.operands[0]
            summary = self.callee_summaries.get(
                callee.name if isinstance(callee, FuncRef) else None
            )
            if summary is None:
                return True  # unknown callee: conservative
            if summary.get("returns_divergent", True):
                return True
            return any(
                isinstance(op, Reg) and op in self.divergent_regs
                for op in instr.operands[1:]
            )
        return any(
            isinstance(op, Reg) and op in self.divergent_regs
            for op in instr.operands
        )

    def _solve(self):
        # Kernel parameters are uniform (launch arguments); device-function
        # parameters take the assumed divergence passed in via summaries.
        changed = True
        while changed:
            changed = False
            # 1. Value propagation.
            for block in self.function.blocks:
                for instr in block:
                    if instr.dst is None:
                        continue
                    if instr.dst in self.divergent_regs:
                        continue
                    if self._instruction_result_divergent(instr):
                        self.divergent_regs.add(instr.dst)
                        changed = True
            # 2. Divergent branches.
            for block in self.function.blocks:
                term = block.terminator
                if term is None or term.opcode is not Opcode.CBR:
                    continue
                pred = term.operands[0]
                if (
                    isinstance(pred, Reg)
                    and pred in self.divergent_regs
                    and block.name not in self.divergent_branches
                ):
                    self.divergent_branches.add(block.name)
                    changed = True
            # 3. Sync dependence: defs inside divergent influence regions.
            for branch_block in list(self.divergent_branches):
                region = influence_region(self.view, self.pdom, branch_block)
                for name in region:
                    block = self.function.block(name)
                    for instr in block:
                        if (
                            instr.dst is not None
                            and instr.dst not in self.divergent_regs
                        ):
                            self.divergent_regs.add(instr.dst)
                            changed = True

    # ------------------------------------------------------------------
    def is_divergent(self, reg):
        return reg in self.divergent_regs

    def is_divergent_branch(self, block_name):
        return block_name in self.divergent_branches

    def summary(self):
        """Callee summary used by callers' analyses."""
        returns_divergent = False
        for block in self.function.blocks:
            term = block.terminator
            if term is not None and term.opcode is Opcode.RET and term.operands:
                value = term.operands[0]
                if isinstance(value, Reg) and value in self.divergent_regs:
                    returns_divergent = True
        return {"returns_divergent": returns_divergent}


def analyze_module_divergence(module):
    """Divergence analyses for all functions, resolving callee summaries.

    Functions are analyzed callees-first (reverse topological over the call
    graph); recursion falls back to conservative summaries.
    """
    from repro.analysis.callgraph import call_graph, reverse_topological

    graph = call_graph(module)
    summaries = {}
    analyses = {}
    for name in reverse_topological(graph):
        function = module.function(name)
        analysis = DivergenceAnalysis(
            function, module=module, callee_summaries=summaries
        )
        analyses[name] = analysis
        summaries[name] = analysis.summary()
    return analyses
