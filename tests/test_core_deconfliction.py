"""Conflict analysis and deconfliction (Section 4.3, Figure 5).

Includes the load-bearing demonstration: without deconfliction, the SR
barrier and the PDOM barrier deadlock the warp; either strategy fixes it.
"""

import pytest

from repro.core import (
    BarrierNamer,
    ConflictAnalysis,
    ReconvergenceCompiler,
    collect_predictions,
    deconflict,
    insert_pdom_sync,
    insert_speculative_reconvergence,
    literal_barriers,
    remove_barrier_ops,
)
from repro.errors import DeadlockError, DeconflictionError
from repro.ir import Opcode
from repro.simt import GPUMachine
from tests.helpers import listing1_module


def _inserted(with_deconflict=None):
    """Listing 1 with pdom + SR barriers; optionally deconflicted."""
    module = listing1_module()
    fn = module.function("k")
    namer = BarrierNamer()
    insert_pdom_sync(fn, namer=namer)
    prediction = collect_predictions(fn)[0]
    report = insert_speculative_reconvergence(fn, prediction, namer=namer)
    sr_barriers = [report.barrier, report.exit_barrier]
    if with_deconflict:
        deconflict(fn, sr_barriers, strategy=with_deconflict)
    from repro.core.directives import strip_directives

    strip_directives(fn)
    return module, fn, report


class TestConflictAnalysis:
    def test_sr_conflicts_with_pdom(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        conflicting = analysis.conflicts_with(report.barrier)
        assert conflicting, "SR barrier must conflict with the PDOM barrier"

    def test_exit_barrier_does_not_conflict(self):
        # The orthogonal region-exit barrier covers everything inclusively.
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        assert analysis.conflicts_with(report.exit_barrier) == []

    def test_interference_is_weaker_than_conflict(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        # Exit barrier interferes (overlaps) with everything it encloses
        # even though it conflicts with nothing.
        others = [b for b in analysis.barriers if b != report.exit_barrier]
        assert any(analysis.interferes(report.exit_barrier, b) for b in others)

    def test_literal_barriers_in_first_use_order(self):
        module, fn, report = _inserted()
        names = literal_barriers(fn)
        assert len(names) == len(set(names)) >= 3

    def test_conflict_record_api(self):
        module, fn, report = _inserted()
        conflict = ConflictAnalysis(fn).conflicts[0]
        assert conflict.involves(conflict.first)
        assert conflict.other(conflict.first) == conflict.second
        with pytest.raises(ValueError):
            conflict.other("nope")


class TestDeadlockWithoutDeconfliction:
    def test_conflicting_barriers_deadlock_the_warp(self):
        """The 'unpredictable behavior' of Section 4.3, concretely."""
        module, fn, report = _inserted(with_deconflict=None)
        with pytest.raises(DeadlockError):
            GPUMachine(module).launch("k", 32)

    def test_dynamic_deconfliction_fixes_it(self):
        module, fn, report = _inserted(with_deconflict="dynamic")
        result = GPUMachine(module).launch("k", 32)
        assert result.simt_efficiency > 0

    def test_static_deconfliction_fixes_it(self):
        module, fn, report = _inserted(with_deconflict="static")
        result = GPUMachine(module).launch("k", 32)
        assert result.simt_efficiency > 0


class TestStrategies:
    def test_dynamic_inserts_cancel_before_wait(self):
        module, fn, report = _inserted(with_deconflict="dynamic")
        then = fn.block("then")
        wait_index = next(
            i
            for i, instr in enumerate(then.instructions)
            if instr.opcode is Opcode.BSYNC
        )
        breaks_before = [
            instr
            for instr in then.instructions[:wait_index]
            if instr.opcode is Opcode.BBREAK
            and instr.attrs.get("origin") == "deconflict"
        ]
        assert breaks_before

    def test_dynamic_removes_nothing(self):
        module_plain, fn_plain, _ = _inserted()
        module_dyn, fn_dyn, _ = _inserted(with_deconflict="dynamic")
        count = lambda fn, op: sum(
            1 for _, _, i in fn.instructions() if i.opcode is op
        )
        assert count(fn_dyn, Opcode.BSYNC) == count(fn_plain, Opcode.BSYNC)

    def test_static_removes_pdom_barrier(self):
        module, fn, report = _inserted(with_deconflict="static")
        analysis = ConflictAnalysis(fn)
        assert analysis.conflicts_with(report.barrier) == []
        origins = {
            i.attrs.get("origin")
            for _, _, i in fn.instructions()
            if i.is_barrier_op
        }
        # The conflicting pdom barrier ops are gone; SR ops remain.
        assert "sr" in origins

    def test_static_report_lists_removed(self):
        module = listing1_module()
        fn = module.function("k")
        namer = BarrierNamer()
        insert_pdom_sync(fn, namer=namer)
        prediction = collect_predictions(fn)[0]
        report = insert_speculative_reconvergence(fn, prediction, namer=namer)
        deconf = deconflict(fn, [report.barrier], strategy="static")
        assert deconf.removed_barriers

    def test_unknown_strategy_rejected(self):
        module, fn, report = _inserted()
        with pytest.raises(DeconflictionError):
            deconflict(fn, [report.barrier], strategy="quantum")

    def test_remove_barrier_ops_counts(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        victim = analysis.conflicts_with(report.barrier)[0]
        removed = remove_barrier_ops(fn, victim)
        assert removed >= 2  # at least its join and wait

    def test_results_identical_across_strategies(self):
        baseline = ReconvergenceCompiler().compile(listing1_module(), mode="baseline")
        dynamic = ReconvergenceCompiler(deconfliction="dynamic").compile(
            listing1_module(), mode="sr"
        )
        static = ReconvergenceCompiler(deconfliction="static").compile(
            listing1_module(), mode="sr"
        )
        results = {}
        for name, prog in (("base", baseline), ("dyn", dynamic), ("stat", static)):
            results[name] = GPUMachine(prog.module).launch("k", 32).memory.snapshot()
        assert results["base"] == results["dyn"] == results["stat"]
