"""Tests for the generic dataflow solver and its fixpoint properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CFGView, solve_backward, solve_forward

DIAMOND = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
LOOP = {"e": ["h"], "h": ["b", "x"], "b": ["h"], "x": []}


class TestForward:
    def test_gen_propagates_down(self):
        view = CFGView(DIAMOND, "a")
        result = solve_forward(view, gen={"a": {"f"}}, kill={})
        assert "f" in result.out_of("d")
        assert "f" in result.in_of("b")

    def test_kill_stops_propagation(self):
        view = CFGView(DIAMOND, "a")
        result = solve_forward(view, gen={"a": {"f"}}, kill={"b": {"f"}, "c": {"f"}})
        assert "f" not in result.in_of("d")

    def test_union_at_joins(self):
        view = CFGView(DIAMOND, "a")
        result = solve_forward(view, gen={"b": {"x"}, "c": {"y"}}, kill={})
        assert result.in_of("d") == frozenset({"x", "y"})

    def test_loop_reaches_fixpoint(self):
        view = CFGView(LOOP, "e")
        result = solve_forward(view, gen={"b": {"f"}}, kill={})
        # Fact generated in the loop body flows around the back edge.
        assert "f" in result.in_of("h")
        assert "f" in result.in_of("x")

    def test_boundary_facts(self):
        view = CFGView(DIAMOND, "a")
        result = solve_forward(view, gen={}, kill={}, boundary={"init"})
        assert "init" in result.out_of("d")


class TestBackward:
    def test_use_propagates_up(self):
        view = CFGView(DIAMOND, "a")
        result = solve_backward(view, gen={"d": {"v"}}, kill={})
        assert "v" in result.out_of("a")
        assert "v" in result.in_of("b")

    def test_kill_blocks_liveness(self):
        view = CFGView(DIAMOND, "a")
        result = solve_backward(view, gen={"d": {"v"}}, kill={"b": {"v"}, "c": {"v"}})
        assert "v" not in result.out_of("a")

    def test_loop_liveness_around_back_edge(self):
        view = CFGView(LOOP, "e")
        result = solve_backward(view, gen={"b": {"v"}}, kill={})
        assert "v" in result.in_of("h")
        assert "v" in result.in_of("e")
        assert "v" not in result.in_of("x")


@st.composite
def dataflow_problem(draw):
    n = draw(st.integers(2, 8))
    nodes = [f"n{i}" for i in range(n)]
    succs = {node: [] for node in nodes}
    for i in range(1, n):
        succs[nodes[draw(st.integers(0, i - 1))]].append(nodes[i])
    for _ in range(draw(st.integers(0, n))):
        a, b = draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
        if nodes[b] not in succs[nodes[a]]:
            succs[nodes[a]].append(nodes[b])
    facts = ["f1", "f2", "f3"]
    gen = {
        node: set(draw(st.lists(st.sampled_from(facts), max_size=2)))
        for node in nodes
    }
    kill = {
        node: set(draw(st.lists(st.sampled_from(facts), max_size=2)))
        for node in nodes
    }
    return CFGView(succs, nodes[0]), gen, kill


class TestFixpointProperties:
    @settings(max_examples=60, deadline=None)
    @given(dataflow_problem())
    def test_forward_solution_is_consistent(self, problem):
        """The solution satisfies the dataflow equations at every node."""
        view, gen, kill = problem
        result = solve_forward(view, gen, kill)
        for node in view.nodes:
            expected_out = (result.in_of(node) - frozenset(kill[node])) | frozenset(
                gen[node]
            )
            assert result.out_of(node) == expected_out
            if node != view.entry:
                acc = frozenset()
                for pred in view.preds[node]:
                    acc |= result.out_of(pred)
                assert result.in_of(node) == acc

    @settings(max_examples=60, deadline=None)
    @given(dataflow_problem())
    def test_backward_solution_is_consistent(self, problem):
        view, gen, kill = problem
        result = solve_backward(view, gen, kill)
        for node in view.nodes:
            expected_in = (result.out_of(node) - frozenset(kill[node])) | frozenset(
                gen[node]
            )
            assert result.in_of(node) == expected_in
            if view.succs[node]:
                acc = frozenset()
                for succ in view.succs[node]:
                    acc |= result.in_of(succ)
                assert result.out_of(node) == acc
