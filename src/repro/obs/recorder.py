"""Launch flight recorder: a bounded ring of recent engine decisions.

When a launch dies — ``LaunchError`` (issue-budget overrun),
``DeadlockError`` (conflicting barriers), or the warp batcher's
guard-streak disable — the profiler tells you *what* the totals were but
not *what the engine was doing* right before. The flight recorder keeps
the last N scheduler/segment/batch decisions in a preallocated ring
buffer, off the allocation fast path, and dumps them as a structured
post-mortem report attached to the raised error (``exc.post_mortem``).

Recording levels:

* ``off`` — no recorder is created;
* ``on`` (default) — **cold events only**: launch start/end, batch epoch
  commits and rollbacks, guard-streak disables, launch classification,
  and the terminal error. These sites fire at most once per epoch or per
  launch, so the steady-state issue loop is untouched;
* ``verbose`` — additionally records every fused-segment commit (one
  entry per burst, still never per instruction). Used by the CI
  conformance leg to prove recording never perturbs results.

Select the level with ``REPRO_FLIGHT_RECORDER`` (``0``/``off``, ``1``/
``on``, ``verbose``) or per machine via ``GPUMachine(flight_recorder=...)``.
Set ``REPRO_POST_MORTEM=<dir>`` to also write each post-mortem report as
a JSON file (one per failed launch) for offline inspection.

Entries are ``(seq, kind, data)`` with ``data`` a small tuple/dict of
primitives; :meth:`FlightRecorder.post_mortem` renders them newest-last.
The ring never influences execution — results are bit-identical at every
level (the conformance matrix pins ``verbose``).
"""

from __future__ import annotations

import json
import os

__all__ = [
    "FlightRecorder",
    "attach_post_mortem",
    "dump_post_mortem",
    "make_recorder",
    "recorder_level",
    "set_recorder_level",
]

#: Default ring capacity (entries), chosen so a post-mortem covers several
#: batch epochs of a wide launch without ever mattering for memory.
DEFAULT_CAPACITY = 256

_LEVELS = ("off", "on", "verbose")


def _level_from_env():
    raw = os.environ.get("REPRO_FLIGHT_RECORDER", "on").strip().lower()
    if raw in ("0", "false", "off", "none"):
        return "off"
    if raw in ("verbose", "2", "full"):
        return "verbose"
    return "on"


#: Global default level for new machines; see :func:`set_recorder_level`.
RECORDER_LEVEL = _level_from_env()


def recorder_level():
    """The current global flight-recorder level."""
    return RECORDER_LEVEL


def set_recorder_level(level):
    """Set the global level (``off``/``on``/``verbose``); returns previous."""
    global RECORDER_LEVEL
    if level not in _LEVELS:
        raise ValueError(f"unknown recorder level {level!r}; use {_LEVELS}")
    previous = RECORDER_LEVEL
    RECORDER_LEVEL = level
    return previous


class FlightRecorder:
    """Bounded ring buffer of recent engine decisions for one launch."""

    __slots__ = ("capacity", "verbose", "kernel", "n_threads",
                 "_ring", "_next", "seq")

    def __init__(self, kernel="", n_threads=0, capacity=DEFAULT_CAPACITY,
                 verbose=False):
        self.capacity = capacity
        self.verbose = verbose
        self.kernel = kernel
        self.n_threads = n_threads
        # Preallocated once; record() only rebinds one slot, so recording
        # never allocates after construction (the data tuples are built by
        # cold call sites).
        self._ring = [None] * capacity
        self._next = 0
        self.seq = 0

    def record(self, kind, data=None):
        """Append one entry; O(1), no allocation beyond the entry tuple."""
        self._ring[self._next] = (self.seq, kind, data)
        self.seq += 1
        self._next += 1
        if self._next == self.capacity:
            self._next = 0

    def events(self):
        """Retained entries, oldest first."""
        if self.seq <= self.capacity:
            return [e for e in self._ring[: self._next] if e is not None]
        return [
            e
            for e in self._ring[self._next:] + self._ring[: self._next]
            if e is not None
        ]

    @property
    def dropped(self):
        """Entries evicted by the ring bound."""
        return max(0, self.seq - self.capacity)

    def post_mortem(self, error=None):
        """Structured report of the retained narrative (JSON-safe dict)."""
        report = {
            "kernel": self.kernel,
            "n_threads": self.n_threads,
            "recorded": self.seq,
            "dropped": self.dropped,
            "events": [
                {"seq": seq, "kind": kind, "data": data}
                for seq, kind, data in self.events()
            ],
        }
        if error is not None:
            report["error"] = {
                "type": type(error).__name__,
                "message": str(error),
            }
        return report

    def describe(self, error=None, limit=12):
        """Human-readable tail of the narrative (newest ``limit`` entries)."""
        report = self.post_mortem(error)
        lines = [
            f"flight recorder: @{self.kernel} x{self.n_threads} "
            f"({report['recorded']} recorded, {report['dropped']} dropped)"
        ]
        for entry in report["events"][-limit:]:
            data = entry["data"]
            suffix = f" {data}" if data is not None else ""
            lines.append(f"  #{entry['seq']:<6} {entry['kind']}{suffix}")
        if error is not None:
            lines.append(f"  -> {type(error).__name__}: {error}")
        return "\n".join(lines)


def make_recorder(kernel, n_threads, level=None):
    """A :class:`FlightRecorder` for one launch, or None when ``off``.

    ``level=None`` defers to the global default (env/``set_recorder_level``).
    """
    level = RECORDER_LEVEL if level is None else level
    if level is True:
        level = "on"
    elif level is False:
        level = "off"
    if level == "off":
        return None
    return FlightRecorder(
        kernel=kernel, n_threads=n_threads, verbose=(level == "verbose")
    )


def _write_report(report, stem):
    """Write ``report`` to ``$REPRO_POST_MORTEM/<stem>.json`` when that
    environment variable names a directory. Never raises: a failing dump
    must not mask the launch error it describes."""
    directory = os.environ.get("REPRO_POST_MORTEM", "").strip()
    if not directory:
        return
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{stem}.json")
        with open(path, "w") as handle:
            json.dump(report, handle, indent=1)
    except OSError:
        pass


def attach_post_mortem(error, recorder, extra=None):
    """Attach ``recorder``'s report to ``error`` as ``post_mortem``
    (and dump it to ``$REPRO_POST_MORTEM`` when set).

    ``extra`` merges additional top-level sections into the report —
    the machine uses it to carry the generated source of the
    last-executed JIT segment into the post-mortem."""
    if recorder is None:
        return None
    report = recorder.post_mortem(error)
    if extra:
        report.update(extra)
    try:
        error.post_mortem = report
    except AttributeError:  # pragma: no cover - exceptions accept attrs
        pass
    _write_report(report, f"postmortem-{recorder.kernel or 'launch'}")
    return report


def dump_post_mortem(recorder, reason):
    """Post-mortem for a non-fatal engine event (e.g. the warp batcher's
    guard-streak disable): returns the report, dumping it to
    ``$REPRO_POST_MORTEM`` when set."""
    if recorder is None:
        return None
    report = recorder.post_mortem()
    report["reason"] = reason
    _write_report(report, f"postmortem-{recorder.kernel or 'launch'}-{reason}")
    return report
