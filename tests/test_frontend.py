"""Frontend tests: lexer, parser, lowering, coarsening."""

import pytest

from repro.errors import ParseError, TransformError
from repro.frontend import (
    ast_nodes as A,
    coarsen_dynamic,
    coarsen_static,
    compile_kernel_source,
    lower_program,
    parse_kernel_source,
    tokenize,
)
from repro.ir import Opcode, verify_module
from repro.simt import GPUMachine, GlobalMemory


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("let x = 1.5; // comment\nx = x + 2;")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert "number" in kinds
        assert kinds[-1] == "eof"

    def test_comments_skipped(self):
        tokens = tokenize("# hash comment\n// slash comment\nx")
        assert [t.text for t in tokens if t.kind != "eof"] == ["x"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_range_operator(self):
        tokens = tokenize("0..10")
        assert [t.text for t in tokens if t.kind != "eof"] == ["0", "..", "10"]

    def test_at_names(self):
        tokens = tokenize("@foo(1)")
        assert tokens[0].kind == "at" and tokens[0].text == "@foo"

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("let x = `1`;")


class TestParser:
    def test_precedence(self):
        program = parse_kernel_source("kernel k() { let x = 1 + 2 * 3; }")
        let = program.function("k").body.statements[0]
        assert isinstance(let.value, A.Bin) and let.value.op == "+"
        assert isinstance(let.value.right, A.Bin) and let.value.right.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        program = parse_kernel_source("kernel k() { let p = 1 + 1 < 3; }")
        value = program.function("k").body.statements[0].value
        assert value.op == "<"

    def test_and_or(self):
        program = parse_kernel_source("kernel k() { let p = 1 < 2 and 3 < 4 or 0; }")
        value = program.function("k").body.statements[0].value
        assert value.op == "or"

    def test_unary_minus(self):
        program = parse_kernel_source("kernel k() { let x = -3; }")
        value = program.function("k").body.statements[0].value
        assert isinstance(value, A.Un) and value.op == "-"

    def test_if_else_blocks(self):
        program = parse_kernel_source(
            "kernel k() { if (1) { let a = 1; } else { let b = 2; } }"
        )
        stmt = program.function("k").body.statements[0]
        assert isinstance(stmt, A.If) and stmt.else_body is not None

    def test_for_range(self):
        program = parse_kernel_source("kernel k() { for i in 0..8 { let x = i; } }")
        stmt = program.function("k").body.statements[0]
        assert isinstance(stmt, A.For) and stmt.var == "i"

    def test_label_and_predict(self):
        program = parse_kernel_source(
            "kernel k() { predict L1, 8; label L1: let x = 1; }"
        )
        statements = program.function("k").body.statements
        assert isinstance(statements[0], A.Predict)
        assert statements[0].threshold == 8
        assert isinstance(statements[1], A.Label)

    def test_predict_function_target(self):
        program = parse_kernel_source("kernel k() { predict @foo; }")
        assert program.function("k").body.statements[0].target == "@foo"

    def test_multiple_functions(self):
        program = parse_kernel_source(
            "func f(x) { return x; } kernel k() { let y = @f(1); }"
        )
        assert len(program.functions) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_kernel_source("kernel k() { let x = 1 }")

    def test_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse_kernel_source("banana k() {}")


class TestLowering:
    def test_while_condition_in_header(self):
        module = compile_kernel_source(
            "kernel k() { let i = 0; while (i < tid()) { i = i + 1; } }"
        )
        fn = module.function("k")
        head = fn.block("while.head")
        assert head.terminator.opcode is Opcode.CBR

    def test_label_starts_new_block(self):
        module = compile_kernel_source(
            "kernel k() { label L1: let x = 1; store(0, x); }"
        )
        fn = module.function("k")
        assert fn.blocks_with_label("L1")

    def test_undefined_variable_rejected(self):
        with pytest.raises(TransformError, match="undefined variable"):
            compile_kernel_source("kernel k() { let x = y + 1; }")

    def test_assign_undeclared_rejected(self):
        with pytest.raises(TransformError, match="undeclared"):
            compile_kernel_source("kernel k() { x = 1; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(TransformError, match="break outside"):
            compile_kernel_source("kernel k() { break; }")

    def test_unknown_callee_rejected(self):
        with pytest.raises(TransformError, match="unknown function"):
            compile_kernel_source("kernel k() { let x = @ghost(1); }")

    def test_unreachable_blocks_pruned_and_verified(self):
        module = compile_kernel_source(
            "kernel k() { for i in 0..4 { break; } store(0, 1.0); }"
        )
        assert verify_module(module)

    def test_return_in_kernel_exits(self):
        module = compile_kernel_source(
            "kernel k() { if (tid() < 1) { return; } store(tid(), 1.0); }"
        )
        result = GPUMachine(module).launch("k", 2)
        assert result.memory.load(0) == 0
        assert result.memory.load(1) == 1.0

    def test_hash01_in_unit_interval_and_deterministic(self):
        module = compile_kernel_source(
            "kernel k() { store(tid(), hash01(tid() * 3.7)); }"
        )
        a = GPUMachine(module).launch("k", 32)
        b = GPUMachine(module, seed=999).launch("k", 32)
        values = [a.memory.load(i) for i in range(32)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 16  # varied
        # hash01 ignores the machine seed (it's input-keyed).
        assert a.memory.snapshot() == b.memory.snapshot()


class TestCoarsening:
    def _one_task_kernel(self):
        return parse_kernel_source(
            """
kernel k(out) {
    store(out + task, task * 2);
}
"""
        ).function("k")

    def test_static_coarsening_structure(self):
        decl = self._one_task_kernel()
        coarsened = coarsen_static(decl)
        assert "n_tasks" in coarsened.params
        assert "n_threads" in coarsened.params
        assert isinstance(coarsened.body.statements[1], A.While)

    def test_static_coarsening_executes_all_tasks(self):
        decl = self._one_task_kernel()
        coarsened = coarsen_static(decl)
        module = lower_program(A.Program(functions=[coarsened]))
        memory = GlobalMemory()
        out = memory.alloc(256, name="out")
        result = GPUMachine(module).launch(
            "k", 32, args=(out, 96, 32), memory=memory
        )
        assert all(result.memory.load(out + t) == t * 2 for t in range(96))

    def test_dynamic_coarsening_executes_all_tasks(self):
        decl = self._one_task_kernel()
        coarsened = coarsen_dynamic(decl)
        module = lower_program(A.Program(functions=[coarsened]))
        memory = GlobalMemory()
        counter = memory.alloc(1, name="counter")
        out = memory.alloc(256, name="out")
        result = GPUMachine(module).launch(
            "k", 32, args=(out, 96, counter), memory=memory
        )
        assert all(result.memory.load(out + t) == t * 2 for t in range(96))
        assert result.memory.load(counter) >= 96
