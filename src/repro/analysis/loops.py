"""Natural loop detection and loop-nest construction.

A back edge ``t -> h`` exists when ``h`` dominates ``t``. The natural loop
of that edge is ``{h} ∪ {nodes that can reach t without passing through h}``.
Loops sharing a header are merged. Nesting is by body containment.

Used by the automatic-detection heuristics (Section 4.5) to find divergent
branches inside loops (Iteration Delay candidates) and divergent-trip-count
inner loops nested in outer loops (Loop Merge candidates).
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dominators import compute_dominators


class Loop:
    """A natural loop: header, body blocks, exits, parent/children."""

    def __init__(self, header):
        self.header = header
        self.body = {header}           # includes the header
        self.latches = []              # sources of back edges
        self.parent = None
        self.children = []

    @property
    def depth(self):
        """Nesting depth; top-level loops have depth 1."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def exit_edges(self, view):
        """Edges leaving the loop as (src, dst) pairs."""
        edges = []
        for node in sorted(self.body):
            for succ in view.succs[node]:
                if succ not in self.body:
                    edges.append((node, succ))
        return edges

    def exit_blocks(self, view):
        """Targets of exit edges (outside the loop), deduplicated."""
        seen = []
        for _, dst in self.exit_edges(view):
            if dst not in seen:
                seen.append(dst)
        return seen

    def contains(self, node):
        return node in self.body

    def __repr__(self):
        return f"<Loop header={self.header} body={sorted(self.body)}>"


class LoopNest:
    """All loops of a CFG plus nesting structure and membership queries."""

    def __init__(self, loops):
        self.loops = loops
        self._by_header = {loop.header: loop for loop in loops}

    @property
    def top_level(self):
        return [loop for loop in self.loops if loop.parent is None]

    def loop_with_header(self, header):
        return self._by_header.get(header)

    def innermost_containing(self, node):
        """The innermost loop whose body contains ``node`` (or None)."""
        best = None
        for loop in self.loops:
            if node in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def loop_depth(self, node):
        loop = self.innermost_containing(node)
        return loop.depth if loop is not None else 0

    def __iter__(self):
        return iter(self.loops)

    def __len__(self):
        return len(self.loops)


def _natural_loop_body(view, header, latch):
    body = {header, latch}
    stack = [latch] if latch != header else []
    while stack:
        node = stack.pop()
        for pred in view.preds[node]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def compute_loops(view):
    """Find all natural loops and build the nest."""
    dom = compute_dominators(view)
    reachable = set(dom.order)
    loops_by_header = {}
    for node in dom.order:
        for succ in view.succs[node]:
            if succ in reachable and dom.dominates(succ, node):
                loop = loops_by_header.get(succ)
                if loop is None:
                    loop = Loop(succ)
                    loops_by_header[succ] = loop
                loop.latches.append(node)
                loop.body |= _natural_loop_body(view, succ, node)
    loops = sorted(loops_by_header.values(), key=lambda l: (len(l.body), l.header))
    # Parent = smallest strictly-containing loop.
    for i, loop in enumerate(loops):
        for candidate in loops[i + 1 :]:
            if loop.header in candidate.body and loop is not candidate:
                if loop.body <= candidate.body:
                    loop.parent = candidate
                    candidate.children.append(loop)
                    break
    return LoopNest(loops)


def loop_nest(function):
    """Loop nest of a function's CFG."""
    return compute_loops(CFGView.of_function(function))
