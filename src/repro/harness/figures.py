"""Regeneration of every table and figure in the evaluation (Section 5).

Each ``figure*`` function runs the experiment and returns a structured
result plus a rendered text report; the CLI (`python -m repro.harness`) and
the benchmark suite both call these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import compare_all, threshold_sweep
from repro.harness.parallel import run_tasks, task
from repro.harness.report import efficiency_chart, format_table
from repro.harness.timeline import render_timeline
from repro.workloads import FIGURE7_WORKLOADS, get_workload
from repro.workloads.corpus import (
    CATEGORY_COUNTS,
    generate_corpus,
    run_funnel,
)


@dataclass
class FigureResult:
    """Structured data + rendered text for one figure/table."""

    name: str
    data: object
    text: str

    def __str__(self):
        return self.text


# ---------------------------------------------------------------------------
# Table 2 — benchmark inventory
# ---------------------------------------------------------------------------
def table2():
    rows = []
    for name in FIGURE7_WORKLOADS:
        workload = get_workload(name)
        rows.append((name, workload.pattern, workload.description))
    text = format_table(
        ["benchmark", "pattern", "description"], rows, title="Table 2: Benchmarks"
    )
    return FigureResult(name="table2", data=rows, text=text)


# ---------------------------------------------------------------------------
# Figure 7 — SIMT efficiency before/after SR
# ---------------------------------------------------------------------------
def figure7(seed=2020, workloads=FIGURE7_WORKLOADS, params=None, jobs=None):
    rows = compare_all(workloads, seed=seed, params=params, jobs=jobs)
    chart_rows = [(r.workload, r.baseline_eff, r.sr_eff) for r in rows]
    table_rows = [
        (r.workload, r.baseline_eff, r.sr_eff, f"{r.efficiency_gain:.2f}x",
         "ok" if r.checksum_ok else "MISMATCH")
        for r in rows
    ]
    text = (
        format_table(
            ["benchmark", "SIMT eff (default)", "SIMT eff (SR)", "gain", "results"],
            table_rows,
            title="Figure 7: SIMT efficiency",
        )
        + "\n\n"
        + efficiency_chart(chart_rows)
    )
    return FigureResult(name="figure7", data=rows, text=text)


# ---------------------------------------------------------------------------
# Figure 8 — SIMT efficiency improvement vs speedup
# ---------------------------------------------------------------------------
def figure8(seed=2020, workloads=FIGURE7_WORKLOADS, params=None, rows=None,
            jobs=None):
    rows = rows or compare_all(workloads, seed=seed, params=params, jobs=jobs)
    table_rows = [
        (
            r.workload,
            f"{r.efficiency_gain:.2f}x",
            f"{r.speedup:.2f}x",
            "<= gain" if r.speedup <= r.efficiency_gain * 1.05 else "> gain",
        )
        for r in rows
    ]
    text = format_table(
        ["benchmark", "SIMT-eff improvement", "speedup", "bound check"],
        table_rows,
        title=(
            "Figure 8: SIMT efficiency improvement vs speedup\n"
            "(improvement in SIMT efficiency serves roughly as an upper "
            "bound on speedup)"
        ),
    )
    return FigureResult(name="figure8", data=rows, text=text)


# ---------------------------------------------------------------------------
# Figure 9 — soft-barrier threshold sweeps (PathTracer, XSBench)
# ---------------------------------------------------------------------------
def figure9(seed=2020, thresholds=None, workloads=("pathtracer", "xsbench"),
            jobs=None):
    data = {}
    sections = []
    for name in workloads:
        baseline, points = threshold_sweep(
            name, thresholds=thresholds, seed=seed, jobs=jobs
        )
        data[name] = (baseline, points)
        rows = [
            (p.threshold, p.simt_efficiency, p.cycles, f"{p.speedup:.2f}x")
            for p in points
        ]
        best = max(points, key=lambda p: p.speedup)
        sections.append(
            format_table(
                ["threshold", "SIMT efficiency", "cycles", "speedup"],
                rows,
                title=(
                    f"Figure 9 [{name}]: baseline eff="
                    f"{baseline.simt_efficiency:.3f}, cycles={baseline.cycles}; "
                    f"best threshold={best.threshold} "
                    f"(speedup {best.speedup:.2f}x)"
                ),
            )
        )
    return FigureResult(name="figure9", data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Figure 10 — automatic Speculative Reconvergence upside
# ---------------------------------------------------------------------------
def _figure10_row(name, seed):
    """Baseline vs auto-SR vs annotated SR for one workload."""
    workload = get_workload(name)
    baseline = workload.run(mode="baseline", seed=seed)
    auto = workload.run(
        mode="auto",
        threshold=None,
        seed=seed,
        auto_options={"auto_threshold": workload.sr_threshold or 16},
    )
    annotated = workload.run(mode="sr", seed=seed)
    return (
        name,
        baseline.simt_efficiency,
        auto.simt_efficiency,
        annotated.simt_efficiency,
        f"{baseline.cycles / auto.cycles:.2f}x",
        f"{baseline.cycles / annotated.cycles:.2f}x",
    )


def figure10(seed=2020, workloads=("meiyamd5", "optix", "rsbench", "pathtracer", "mcb"),
             jobs=None):
    """Auto-detected candidates: compare baseline, auto-SR and annotated SR.

    The paper restricts Figure 10 to cases with significant upside and
    notes "automatic Speculative Reconvergence performs the same as
    programmer-annotated variants of the benchmarks".
    """
    rows = run_tasks(
        [task(_figure10_row, name, seed) for name in workloads], jobs=jobs
    )
    text = format_table(
        [
            "benchmark",
            "eff (base)",
            "eff (auto)",
            "eff (annotated)",
            "speedup (auto)",
            "speedup (annotated)",
        ],
        rows,
        title="Figure 10: Automatic Speculative Reconvergence",
    )
    return FigureResult(name="figure10", data=rows, text=text)


# ---------------------------------------------------------------------------
# Section 5.4 — the 520-application funnel
# ---------------------------------------------------------------------------
def corpus_funnel(counts=None, seed=520, efficiency_cutoff=0.8, significance=1.10):
    apps = generate_corpus(counts=counts or CATEGORY_COUNTS, seed=seed)
    funnel = run_funnel(
        apps, efficiency_cutoff=efficiency_cutoff, significance=significance
    )
    detected_rows = [
        (
            r["name"],
            r["category"],
            r["baseline_eff"],
            r["auto_eff"] if r["auto_eff"] is not None else "-",
            f"{r['speedup']:.2f}x" if r["speedup"] else "-",
        )
        for r in funnel.rows
        if r["detected"]
    ]
    text = (
        f"Section 5.4 funnel: {funnel.describe()}\n"
        f"(paper: 520 apps -> 75 below 80% -> 16 detected -> 5 significant)\n\n"
        + format_table(
            ["app", "category", "eff (base)", "eff (auto)", "speedup"],
            detected_rows,
            title="Detected applications",
        )
    )
    return FigureResult(name="corpus_funnel", data=funnel, text=text)


# ---------------------------------------------------------------------------
# Figure 1 — execution timelines, PDOM vs Speculative Reconvergence
# ---------------------------------------------------------------------------
def _hot_block(launch, function):
    """The most-issued block of ``function`` in warp 0's trace."""
    counts = {}
    for event in launch.profiler.trace:
        if event[0] == 0 and event[1] == function:
            counts[event[2]] = counts.get(event[2], 0) + 1
    return max(counts, key=counts.get) if counts else None


def figure1(seed=2020, width=72):
    """Regenerate the paper's Figure 1 cartoons from cycle-stamped traces:
    the shared ``shade`` body serializes under PDOM (diagonal staircase)
    and converges into wide waves under interprocedural SR."""
    workload = get_workload("funccall", iterations=10)
    baseline = workload.run(mode="baseline", seed=seed, trace=True)
    optimized = workload.run(mode="sr", seed=seed, trace=True)
    highlight = _hot_block(baseline.launch, "shade")
    sections = []
    for label, result in (("PDOM baseline", baseline),
                          ("speculative reconvergence", optimized)):
        sections.append(
            f"Figure 1 [{label}]: '#' = {highlight} (the shared shade "
            f"body), SIMT efficiency {result.simt_efficiency:.1%}\n"
            + render_timeline(
                result.launch, width=width, highlight=highlight, legend=False
            )
        )
    return FigureResult(
        name="figure1",
        data={"baseline": baseline, "sr": optimized, "highlight": highlight},
        text="\n\n".join(sections),
    )


# ---------------------------------------------------------------------------
# Section 5.1 microbenchmark — common function call
# ---------------------------------------------------------------------------
def funccall_microbenchmark(seed=2020):
    workload = get_workload("funccall")
    baseline = workload.run(mode="baseline", seed=seed)
    optimized = workload.run(mode="sr", seed=seed)
    base_shade = workload.shade_efficiency(baseline.launch)
    opt_shade = workload.shade_efficiency(optimized.launch)
    rows = [
        ("overall SIMT efficiency", baseline.simt_efficiency, optimized.simt_efficiency),
        ("efficiency inside @shade", base_shade, opt_shade),
        ("cycles", baseline.cycles, optimized.cycles),
    ]
    text = format_table(
        ["metric", "baseline (PDOM)", "interprocedural SR"],
        rows,
        title=(
            "Common-function-call microbenchmark (Figure 2c / Section 4.4): "
            f"speedup {baseline.cycles / optimized.cycles:.2f}x"
        ),
    )
    return FigureResult(
        name="funccall", data={"baseline": baseline, "sr": optimized}, text=text
    )


# ---------------------------------------------------------------------------
# Section 4.3 ablation — static vs dynamic deconfliction
# ---------------------------------------------------------------------------
def deconfliction_ablation(seed=2020, workloads=("rsbench", "mcb", "pathtracer")):
    from repro.workloads import get_workload

    rows = []
    for name in workloads:
        workload = get_workload(name)
        baseline = workload.run(mode="baseline", seed=seed)
        dynamic = workload.run(mode="sr", seed=seed, deconfliction="dynamic")
        static = workload.run(mode="sr", seed=seed, deconfliction="static")
        rows.append(
            (
                name,
                f"{baseline.cycles / dynamic.cycles:.2f}x",
                f"{baseline.cycles / static.cycles:.2f}x",
                dynamic.barrier_issues,
                static.barrier_issues,
            )
        )
    text = format_table(
        [
            "benchmark",
            "speedup (dynamic)",
            "speedup (static)",
            "barrier issues (dyn)",
            "barrier issues (stat)",
        ],
        rows,
        title=(
            "Section 4.3 ablation: deconfliction strategies (static removes "
            "the conflicting PDOM barrier; dynamic withdraws at run time)"
        ),
    )
    return FigureResult(name="deconfliction", data=rows, text=text)


ALL_FIGURES = {
    "fig1": figure1,
    "table2": table2,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "funnel": corpus_funnel,
    "funccall": funccall_microbenchmark,
    "deconfliction": deconfliction_ablation,
}
