"""Barrier conflict analysis (Section 4.3).

"Two barriers are said to be conflicting if their live ranges overlap in a
non-inclusive manner, i.e. neither one is a complete subset of the other.
If a region has conflicting barriers, threads may wait for each other at
two different places within the region resulting in unpredictable
behavior."

A barrier's live range "extends from the moment threads join the barrier
until the barrier is cleared either by waiting or exiting threads" — the
*joined* interval of Equation 1, computed at instruction granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.joined_barriers import JoinedBarriers
from repro.ir.instructions import BARRIER_OPS, Barrier


@dataclass(frozen=True)
class Conflict:
    """A non-inclusive overlap between two barriers' live ranges."""

    first: str
    second: str
    shared_points: int
    only_first: int
    only_second: int

    def involves(self, barrier):
        return barrier in (self.first, self.second)

    def other(self, barrier):
        if barrier == self.first:
            return self.second
        if barrier == self.second:
            return self.first
        raise ValueError(f"{barrier} not part of this conflict")

    def describe(self):
        return (
            f"{self.first} x {self.second}: share {self.shared_points} "
            f"points, exclusive {self.only_first}/{self.only_second}"
        )


def literal_barriers(function):
    """All literal barrier names referenced by barrier ops, in first-use order."""
    seen = []
    for _, _, instr in function.instructions():
        if instr.opcode in BARRIER_OPS and instr.operands:
            operand = instr.operands[0]
            if isinstance(operand, Barrier) and operand.name not in seen:
                seen.append(operand.name)
    return seen


class ConflictAnalysis:
    """Pairwise live-range conflicts among a function's barriers."""

    def __init__(self, function, joined=None):
        self.function = function
        self.joined = joined or JoinedBarriers(function)
        self.barriers = literal_barriers(function)
        self._ranges = {
            name: self.joined.joined_points(name) for name in self.barriers
        }
        self.conflicts = self._find_conflicts()

    def live_range(self, barrier):
        return self._ranges.get(barrier, set())

    def _find_conflicts(self):
        conflicts = []
        for i, a in enumerate(self.barriers):
            for b in self.barriers[i + 1 :]:
                ra, rb = self._ranges[a], self._ranges[b]
                shared = ra & rb
                if not shared:
                    continue
                only_a = ra - rb
                only_b = rb - ra
                if only_a and only_b:
                    conflicts.append(
                        Conflict(
                            first=a,
                            second=b,
                            shared_points=len(shared),
                            only_first=len(only_a),
                            only_second=len(only_b),
                        )
                    )
        return conflicts

    def conflicts_with(self, barrier):
        """Barriers conflicting with ``barrier``."""
        return [c.other(barrier) for c in self.conflicts if c.involves(barrier)]

    def interferes(self, a, b):
        """True when the two barriers' ranges overlap at all (for the
        allocation pass: overlapping barriers need distinct registers)."""
        return bool(self._ranges.get(a, set()) & self._ranges.get(b, set()))
