"""NumPy structure-of-arrays lane state for fused-segment chunks.

The segment layer (:mod:`repro.simt.segments`) already executes pure
straight-line runs thread-major, but each instruction of the run is still a
Python closure applied one lane at a time — a converged 32-wide group pays
32 interpreter dispatches per instruction. This module turns those chunks
into **warp-level structure-of-arrays vector code**: one ``float64`` numpy
column per register slot with lanes as the vector axis, so an eight-FMA
loop body becomes eight ufunc calls over the whole group instead of
``8 × 32`` Python evaluations.

Bit-identical results are non-negotiable (the conformance matrix and
goldens pin them), which dictates the design:

* **Typed/untyped slot split.** :func:`classify_slots` runs a decode-time
  fixpoint over the function body and proves, per register slot, that
  every runtime value is a Python ``float`` (``KIND_FLOAT``), every value
  is a Python ``int`` (``KIND_INT``), or nothing is known
  (``KIND_OBJECT`` — barrier registers, loaded cells, call results,
  params). Only provably-float slots get result columns: Python floats
  *are* IEEE doubles, so ``np.add``/``subtract``/``multiply``/``divide``
  on float64 columns reproduce the scalar results bit-for-bit (CPython
  float arithmetic overflows to ``inf`` silently, exactly like numpy).
  Int slots stay list-resident — Python ints are unbounded and an int64
  column would silently wrap — but may be *read* into a float64 mirror
  where Python itself would convert the operand (mixed int/float
  arithmetic converts the int correctly rounded, identical to the
  column gather; huge ints raise ``OverflowError`` either way).
  Transcendental ops (``sin``/``cos``/``exp``/``log``) are never
  vectorized: numpy's SIMD kernels are not guaranteed last-ulp-identical
  to ``math.*``.

* **Masking.** A divergent group is already a *subset* of the warp — the
  scheduler hands the chunk exactly the converged threads — so partial
  activity is expressed by gathering and scattering only the group's
  lanes: inactive lanes' frames are never touched. Value-level guards
  (``div`` by zero, ``sqrt`` of non-positives) use ``where=`` masks over
  a zero-filled output, matching the scalar ``... if b != 0 else 0.0``
  semantics exactly. :func:`group_bitmask` / :func:`bitmask_to_bool` /
  :func:`bool_to_bitmask` bridge the engine's int-bitmask member sets to
  numpy bool masks and back, exactly for all 2**32 patterns.

* **Containment.** Columns live only *inside* one chunk execution:
  gather → vector ops (interleaved with thread-major "lane op" phases
  for non-vectorizable instructions, with the flush/invalidate points
  computed at compile time) → scatter + one frame-index write. No column
  state escapes, so memory-op steps, batch checkpoints/rollbacks, and
  error paths always see canonical list-backed frames.

* **UNDEF.** Gathering a column from frames calls ``float()`` on each
  value; the :data:`~repro.simt.warp.UNDEF` sentinel's ``__float__``
  raises the same "use of undefined register value" ``SimulationError``
  the scalar closures raise, so read-before-write stays a hard error.

numpy stays optional: when it is missing (or ``REPRO_SOA=0`` /
``GPUMachine(soa=False)``), chunks run thread-major exactly as before.
The first vector chunk executed flips numpy's error state to
``ignore`` once (Python float arithmetic is silent about ``inf`` too);
nothing else in the engine uses numpy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.ir.instructions import HAS_DST, Imm, Opcode, Reg
from repro.simt.executor import _BINARY_EVAL as _SCALAR_BINARY
from repro.simt.executor import _UNARY_EVAL as _SCALAR_UNARY

try:  # numpy is an optional dependency; everything degrades without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None

__all__ = [
    "KIND_FLOAT",
    "KIND_INT",
    "KIND_OBJECT",
    "MIN_SOA_LANES",
    "bitmask_to_bool",
    "bool_to_bitmask",
    "classify_slots",
    "compile_chunk",
    "group_bitmask",
    "set_soa",
    "set_soa_lanes",
    "set_soa_min_gain",
    "soa_available",
    "soa_disabled",
    "soa_enabled",
    "soa_lanes",
]


def soa_available():
    """True when numpy is importable (the SoA layer can exist at all)."""
    return _np is not None


#: Global default for new machines/executors. Flip with ``set_soa`` or the
#: ``REPRO_SOA`` environment variable (0/false/off disables). Defaults to
#: on exactly when numpy is available.
SOA_ENABLED = soa_available() and os.environ.get("REPRO_SOA", "1").lower() not in (
    "0",
    "false",
    "off",
)

#: Minimum group width for vector execution. Below this the gather/scatter
#: loops outweigh the ufunc win (measured crossover is ~16-24 lanes on the
#: Table 2 corpus); narrow groups run the thread-major chunk. Override with
#: ``REPRO_SOA_LANES`` or :func:`set_soa_lanes` (tests force 1 to cover the
#: vector path on narrow kernels).
MIN_SOA_LANES = int(os.environ.get("REPRO_SOA_LANES", "24"))

#: Minimum modelled advantage — thread-major work absorbed minus the
#: ufunc calls and python loops the vector strategy pays, in the cost
#: units of :func:`compile_chunk` (roughly tenths of a microsecond at
#: warp width) — for a chunk to compile a vector variant. Lower it (a
#: large negative value admits everything) with :func:`set_soa_min_gain`
#: to force the vector path in tests.
MIN_VECTOR_GAIN = 40


def soa_enabled():
    """The current global SoA default."""
    return SOA_ENABLED


def set_soa(enabled):
    """Set the global SoA default; returns the previous value.

    Enabling has no effect when numpy is unavailable.
    """
    global SOA_ENABLED
    previous = SOA_ENABLED
    SOA_ENABLED = bool(enabled) and soa_available()
    return previous


@contextmanager
def soa_disabled():
    """Run a block with list-backed chunk execution (SoA off)."""
    previous = set_soa(False)
    try:
        yield
    finally:
        set_soa(previous)


def soa_lanes():
    """The current minimum group width for vector execution."""
    return MIN_SOA_LANES


def set_soa_lanes(n):
    """Set the minimum group width; returns the previous value.

    Takes effect for executors built afterwards (the threshold is read at
    launch setup, never per chunk).
    """
    global MIN_SOA_LANES
    previous = MIN_SOA_LANES
    MIN_SOA_LANES = int(n)
    return previous


def set_soa_min_gain(gain):
    """Set the chunk-compile advantage threshold; returns the previous.

    Takes effect for segments *built* afterwards — compiled chunks are
    cached on their (shared, decode-cached) ``Segment``, so tests forcing
    the gate should use a freshly compiled module.
    """
    global MIN_VECTOR_GAIN
    previous = MIN_VECTOR_GAIN
    MIN_VECTOR_GAIN = int(gain)
    return previous


# ---------------------------------------------------------------------------
# Bitmask <-> numpy bool mask bridge
# ---------------------------------------------------------------------------
def group_bitmask(group):
    """The int lane-bitmask of a thread group (bit ``lane`` per thread).

    Same encoding as the barrier member/parked sets in
    :mod:`repro.simt.barrier_state`.
    """
    mask = 0
    for thread in group:
        mask |= 1 << thread.lane
    return mask


def bitmask_to_bool(mask, width):
    """An int lane-bitmask as a numpy bool array of ``width`` lanes.

    Bit ``i`` of ``mask`` becomes element ``i``. Exact for every pattern:
    each bit is tested individually, no float detours.
    """
    return _np.fromiter(
        ((mask >> lane) & 1 for lane in range(width)), _np.bool_, width
    )


def bool_to_bitmask(mask_array):
    """A numpy bool array back to the int lane-bitmask (inverse of
    :func:`bitmask_to_bool` for every width and pattern)."""
    mask = 0
    for lane, active in enumerate(mask_array):
        if active:
            mask |= 1 << lane
    return mask


# ---------------------------------------------------------------------------
# Decode-time slot classification
# ---------------------------------------------------------------------------
#: Every runtime value of the slot is a Python float.
KIND_FLOAT = "float"
#: Every runtime value of the slot is a Python int.
KIND_INT = "int"
#: Anything else: params, loads, call results, barrier registers, or slots
#: written with both int and float values.
KIND_OBJECT = "object"

# Opcodes whose destination is always a Python int.
_INT_RESULTS = frozenset(
    {
        Opcode.TID,
        Opcode.LANE,
        Opcode.WARPID,
        Opcode.BARCNT,
        Opcode.FLOOR,
        Opcode.NOT,
        Opcode.REM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
        Opcode.CMPEQ,
        Opcode.CMPNE,
    }
)

# Opcodes whose destination is always a Python float.
_FLOAT_RESULTS = frozenset(
    {
        Opcode.RAND,
        Opcode.DIV,
        Opcode.SQRT,
        Opcode.SIN,
        Opcode.COS,
        Opcode.EXP,
        Opcode.LOG,
    }
)

# Numeric-promoting arithmetic: float if any operand is float, int if all
# operands are int (Python promotes the int operand exactly).
_PROMOTING = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.FMA})

# Operand-picking ops: the result is one of the value operands unchanged,
# so the kind is only known when the candidates agree.
_PICKING = frozenset({Opcode.MIN, Opcode.MAX, Opcode.SEL})

# Kind-preserving unaries (``-int`` is an int, ``abs(float)`` a float).
_PRESERVING = frozenset({Opcode.MOV, Opcode.NEG, Opcode.ABS})


def _imm_kind(value):
    # type() rather than isinstance: bools are not ints here.
    if type(value) is float:
        return KIND_FLOAT
    if type(value) is int:
        return KIND_INT
    return KIND_OBJECT


def _operand_kind(operand, kinds, slots):
    """The kind of one operand, or None while still unwritten (TOP)."""
    if isinstance(operand, Imm):
        return _imm_kind(operand.value)
    if isinstance(operand, Reg):
        return kinds[slots[operand.name]]
    return KIND_OBJECT


def _result_kind(instr, kinds, slots):
    """The kind an instruction's destination takes, or None (unknown yet)."""
    opcode = instr.opcode
    if opcode in _INT_RESULTS:
        return KIND_INT
    if opcode in _FLOAT_RESULTS:
        return KIND_FLOAT
    if opcode is Opcode.CONST:
        return _imm_kind(instr.operands[0].value)
    if opcode in _PRESERVING:
        return _operand_kind(instr.operands[0], kinds, slots)
    if opcode in _PROMOTING:
        ks = [_operand_kind(op, kinds, slots) for op in instr.operands]
        if KIND_OBJECT in ks:
            return KIND_OBJECT
        if KIND_FLOAT in ks:
            return KIND_FLOAT
        if None in ks:
            return None
        return KIND_INT
    if opcode in _PICKING:
        # SEL picks between operands 1 and 2; MIN/MAX between 0 and 1.
        values = instr.operands[1:] if opcode is Opcode.SEL else instr.operands[:2]
        ks = [_operand_kind(op, kinds, slots) for op in values]
        if KIND_OBJECT in ks:
            return KIND_OBJECT
        if None in ks:
            return None
        if all(k == ks[0] for k in ks):
            return ks[0]
        return KIND_OBJECT  # mixed int/float pick preserves the operand type
    # LD, ATOMADD, CALL results, barrier moves, anything exotic.
    return KIND_OBJECT


def _meet(current, new):
    if new is None:
        return current
    if current is None:
        return new
    if current == new:
        return current
    return KIND_OBJECT


def classify_slots(function):
    """Per-slot value kinds for a function, as a tuple over ``reg_slots()``.

    A descending fixpoint: slots start unknown, kernel/function params and
    every opaque write force :data:`KIND_OBJECT`, arithmetic propagates
    int/float-ness, and disagreement between writes lowers to object.
    Slots never written stay unknown and are reported as
    :data:`KIND_OBJECT` (reads of them raise ``UNDEF`` either way).
    """
    slots = function.reg_slots()
    kinds = [None] * len(slots)
    for param in function.params:
        kinds[slots[param.name]] = KIND_OBJECT
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for instr in block.instructions:
                dst = instr.dst
                if not isinstance(dst, Reg):
                    continue
                if instr.opcode not in HAS_DST:
                    # Barrier-register writes and other non-value defs.
                    merged = KIND_OBJECT
                else:
                    merged = _meet(
                        kinds[slots[dst.name]],
                        _result_kind(instr, kinds, slots),
                    )
                slot = slots[dst.name]
                if merged != kinds[slot]:
                    kinds[slot] = merged
                    changed = True
    return tuple(KIND_OBJECT if kind is None else kind for kind in kinds)


# ---------------------------------------------------------------------------
# Vector-op compilation
# ---------------------------------------------------------------------------
_errstate_set = False


def _silence_numpy():
    # Python float arithmetic produces inf/nan silently; numpy warns by
    # default. Flip its error state once, lazily, the first time a vector
    # chunk actually runs — importing the engine alone changes nothing.
    global _errstate_set
    if not _errstate_set:
        _np.seterr(all="ignore")
        _errstate_set = True


class _Operand:
    """One vector-op operand: a gathered column or a numeric immediate."""

    __slots__ = ("slot", "value", "kind")

    def __init__(self, slot, value, kind):
        self.slot = slot  # register slot for columns, None for immediates
        self.value = value  # immediate value, None for columns
        self.kind = kind  # KIND_FLOAT or KIND_INT

    @property
    def is_column(self):
        return self.slot is not None


def _fetch(operand):
    """A ``cols -> array-or-scalar`` accessor for a classified operand."""
    if operand.is_column:
        slot = operand.slot
        return lambda cols: cols[slot]
    value = operand.value
    return lambda cols: value


# Modelled execution costs, in rough tenths of a microsecond at warp
# width (~24-32 lanes, the only widths the lane gate admits). They only
# feed the compile-time gain gate — never results — so they can stay
# coarse: a thread-major micro op costs the group-sized python loop, a
# ufunc call is flat, python loops (gather/scatter/fill/lane phases) cost
# a bit more than a micro op because of the per-element attribute walks.
_COST_TM = 17
_COST_UFUNC = 7
_COST_LOOP = 25
_COST_ALIAS = 1

_SIMPLE_BINARY = {}
_SIMPLE_UNARY = {}
if _np is not None:
    _SIMPLE_BINARY = {
        Opcode.ADD: _np.add,
        Opcode.SUB: _np.subtract,
        Opcode.MUL: _np.multiply,
    }
    _SIMPLE_UNARY = {
        Opcode.NEG: _np.negative,
        Opcode.ABS: _np.absolute,
    }

#: Returned by :func:`_fold_scalar` when an instruction cannot be folded.
_NO_FOLD = object()


def _fold_scalar(instr, resolve):
    """Statically evaluate an instruction whose operands all resolve to
    known scalars, returning the exact value the scalar engine would
    produce, or :data:`_NO_FOLD`.

    Folding reuses the *executor's own* eval tables (and mirrors its lazy
    SEL / ``a * b + c`` FMA branches), so a folded value is computed by
    exactly the code the thread-major path would have run. Any exception
    during folding vetoes the fold — the op stays thread-major and raises
    at run time, where the scalar engine raises.
    """
    opcode = instr.opcode
    if opcode is Opcode.CONST:
        value = instr.operands[0].value
        return value if _imm_kind(value) is not KIND_OBJECT else _NO_FOLD
    if opcode is Opcode.SEL:
        pred = resolve(instr.operands[0])
        if pred is None or pred.is_column:
            return _NO_FOLD
        # Only the picked operand is evaluated (the executor's SEL is
        # lazy), so an unpicked UNDEF or column must not matter here.
        picked = resolve(instr.operands[1 if pred.value != 0 else 2])
        if picked is None or picked.is_column:
            return _NO_FOLD
        return picked.value
    operands = [resolve(op) for op in instr.operands]
    if any(op is None or op.is_column for op in operands):
        return _NO_FOLD
    try:
        if opcode is Opcode.FMA:
            a, b, c = (op.value for op in operands)
            value = a * b + c
        elif opcode in _SCALAR_BINARY:
            value = _SCALAR_BINARY[opcode](operands[0].value, operands[1].value)
        elif opcode in _SCALAR_UNARY:
            value = _SCALAR_UNARY[opcode](operands[0].value)
        else:
            return _NO_FOLD
    except Exception:
        return _NO_FOLD
    return value if type(value) in (int, float) else _NO_FOLD


def _compile_vector(instr, slots, kinds, resolve, safe_columns):
    """Compile one instruction for vector execution, or None.

    Returns ``(compute, column_reads, cost)``: a ``(cols, group) ->
    float64 column`` closure, the slots whose columns must be gathered
    before it runs, and its modelled cost in :data:`_COST_TM` units.
    ``column_reads`` lists every column operand the *scalar* engine would
    have evaluated — including ones the vector form never touches (the
    zero-divisor DIV) — so read-before-write raises at the gather exactly
    where the scalar path raises. ``safe_columns`` is the planner's set of
    already-live columns; SEL consults it because ``np.where`` evaluates
    both sides while the scalar SEL reads only each thread's picked
    operand, so a side column is only legal when proven defined.

    Closures never write through an array bound to a slot (fresh result
    arrays, or in-place only into a temporary they just allocated), so
    aliased destinations — ``fma %x, %x, %x`` — behave exactly like the
    scalar evaluation order.
    """
    opcode = instr.opcode
    if not isinstance(instr.dst, Reg) or kinds[slots[instr.dst.name]] is not KIND_FLOAT:
        return None

    if opcode is Opcode.RAND:

        def rand(cols, group):
            return _np.fromiter(
                (thread.rng.uniform() for thread in group),
                _np.float64,
                len(group),
            )

        # A python loop either way; modelled as break-even so RAND neither
        # justifies a chunk nor splits one (a lane phase would force a
        # scatter/gather boundary around it).
        return rand, (), _COST_TM

    if opcode in _SIMPLE_UNARY:
        ufunc = _SIMPLE_UNARY[opcode]
        a = resolve(instr.operands[0])
        if a is None or not a.is_column:
            return None
        slot = a.slot
        return (lambda cols, group: ufunc(cols[slot])), (slot,), _COST_UFUNC

    if opcode is Opcode.MOV:
        a = resolve(instr.operands[0])
        if a is None or not a.is_column:
            return None  # scalar sources were forwarded by the planner
        slot = a.slot
        # Aliasing is safe: columns are rebound, never mutated.
        return (lambda cols, group: cols[slot]), (slot,), _COST_ALIAS

    if opcode in _SIMPLE_BINARY:
        ufunc = _SIMPLE_BINARY[opcode]
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        if a is None or b is None or not (a.is_column or b.is_column):
            return None
        get_a, get_b = _fetch(a), _fetch(b)
        reads = tuple(op.slot for op in (a, b) if op.is_column)
        return (
            (lambda cols, group: ufunc(get_a(cols), get_b(cols))),
            reads,
            _COST_UFUNC,
        )

    if opcode is Opcode.DIV:
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        if a is None or b is None or not (a.is_column or b.is_column):
            return None
        if a.kind is KIND_INT and b.kind is KIND_INT:
            # Python int/int division is correctly rounded from the exact
            # rational; dividing rounded float64 mirrors double-rounds.
            return None
        reads = tuple(op.slot for op in (a, b) if op.is_column)
        get_a = _fetch(a)
        if not b.is_column:
            if b.value == 0:
                # Still gathers the dividend: the scalar engine evaluates
                # it (and raises on UNDEF) before applying the guard.
                return (
                    (lambda cols, group: _np.zeros(len(group))),
                    reads,
                    _COST_UFUNC,
                )
            bv = b.value
            return (
                (lambda cols, group: _np.divide(get_a(cols), bv)),
                reads,
                _COST_UFUNC,
            )
        get_b = _fetch(b)

        def div(cols, group):
            divisor = get_b(cols)
            out = _np.zeros(len(group))
            _np.divide(get_a(cols), divisor, out=out, where=(divisor != 0))
            return out

        return div, reads, 3 * _COST_UFUNC

    if opcode is Opcode.SQRT:
        a = resolve(instr.operands[0])
        if a is None or not a.is_column:
            return None
        slot = a.slot

        def sqrt(cols, group):
            arg = cols[slot]
            out = _np.zeros(len(group))
            _np.sqrt(arg, out=out, where=(arg > 0))
            return out

        return sqrt, (slot,), 3 * _COST_UFUNC

    if opcode in (Opcode.MIN, Opcode.MAX):
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        if a is None or b is None or not (a.is_column or b.is_column):
            return None
        if a.kind is not KIND_FLOAT or b.kind is not KIND_FLOAT:
            # min/max return an *operand*; an int winner must stay an int.
            return None
        get_a, get_b = _fetch(a), _fetch(b)
        reads = tuple(op.slot for op in (a, b) if op.is_column)
        if opcode is Opcode.MIN:
            # Python min(a, b) is ``b if b < a else a`` — NaN-propagation
            # and signed-zero behavior included.
            def vmin(cols, group):
                av, bv = get_a(cols), get_b(cols)
                return _np.where(bv < av, bv, av)

            return vmin, reads, 2 * _COST_UFUNC

        def vmax(cols, group):
            av, bv = get_a(cols), get_b(cols)
            return _np.where(bv > av, bv, av)

        return vmax, reads, 2 * _COST_UFUNC

    if opcode is Opcode.SEL:
        pred = resolve(instr.operands[0])
        if pred is None:
            return None
        if not pred.is_column:
            # Pred known at compile time: the executor's SEL evaluates
            # only the picked operand, so the other side never matters.
            picked = resolve(instr.operands[1 if pred.value != 0 else 2])
            if picked is None or not picked.is_column:
                return None  # scalar picks were folded by the planner
            slot = picked.slot
            return (lambda cols, group: cols[slot]), (slot,), _COST_ALIAS
        # Column predicate. np.where evaluates BOTH sides while the scalar
        # SEL reads only each thread's picked operand: an unpicked UNDEF
        # must not raise, so side columns are only legal when already live
        # (gathered or computed earlier in this chunk, hence proven
        # defined); scalars are defined by construction. An int predicate
        # column must be live too — a fresh gather could overflow where
        # the scalar truthiness test never converts.
        t = resolve(instr.operands[1])
        f = resolve(instr.operands[2])
        if t is None or f is None:
            return None
        if t.kind is not KIND_FLOAT or f.kind is not KIND_FLOAT:
            return None
        for side in (t, f):
            if side.is_column and side.slot not in safe_columns:
                return None
        if pred.kind is KIND_INT and pred.slot not in safe_columns:
            return None
        get_p, get_t, get_f = _fetch(pred), _fetch(t), _fetch(f)
        reads = (pred.slot,)
        return (
            (
                lambda cols, group: _np.where(
                    get_p(cols) != 0, get_t(cols), get_f(cols)
                )
            ),
            reads,
            2 * _COST_UFUNC,
        )

    if opcode is Opcode.FMA:
        a = resolve(instr.operands[0])
        b = resolve(instr.operands[1])
        c = resolve(instr.operands[2])
        if a is None or b is None or c is None:
            return None
        if not (a.is_column or b.is_column or c.is_column):
            return None  # all-scalar forms were folded by the planner
        if a.kind is KIND_INT and b.kind is KIND_INT:
            # int*int is exact in Python; float64 mirrors would round the
            # factors before multiplying (double rounding past 2**53).
            return None
        reads = tuple(op.slot for op in (a, b, c) if op.is_column)
        get_c = _fetch(c)
        if a.is_column or b.is_column:
            get_a, get_b = _fetch(a), _fetch(b)

            def fma(cols, group):
                product = _np.multiply(get_a(cols), get_b(cols))
                # In-place into the product it just allocated — never an
                # array bound to a slot.
                return _np.add(product, get_c(cols), out=product)

            return fma, reads, 2 * _COST_UFUNC
        # Both factors immediate (at least one float): the Python product
        # is exact and the add promotes it identically. Computed once here
        # when it cannot raise; otherwise inside the closure so an
        # overflowing conversion raises at run time, where the scalar
        # path raises.
        av, bv = a.value, b.value
        try:
            product_value = av * bv
        except Exception:
            return (
                (lambda cols, group: _np.add(get_c(cols), av * bv)),
                reads,
                _COST_UFUNC,
            )
        return (
            (lambda cols, group: _np.add(get_c(cols), product_value)),
            reads,
            _COST_UFUNC,
        )

    return None


def _entry_reads_writes(instr, slots):
    reads = [
        slots[operand.name]
        for operand in instr.operands
        if isinstance(operand, Reg)
    ]
    write = slots[instr.dst.name] if isinstance(instr.dst, Reg) else None
    return reads, write


def _gather_step(slot):
    def gather(cols, group):
        # float() on UNDEF raises the read-before-write SimulationError,
        # mirroring the scalar closures; huge ints raise OverflowError
        # exactly where mixed Python arithmetic would.
        cols[slot] = _np.array(
            [thread.frames[-1].regs[slot] for thread in group],
            dtype=_np.float64,
        )

    return gather


def _scatter_step(slot):
    def scatter(cols, group):
        values = cols[slot].tolist()  # exact: float64 -> Python float
        for thread, value in zip(group, values):
            thread.frames[-1].regs[slot] = value

    return scatter


def _fill_step(pairs):
    pairs = tuple(pairs)

    def fill(cols, group):
        for thread in group:
            regs = thread.frames[-1].regs
            for slot, value in pairs:
                regs[slot] = value

    return fill


def _vector_step(compute, dst):
    def step(cols, group):
        cols[dst] = compute(cols, group)

    return step


def _lane_step(micro_ops):
    ops = tuple(micro_ops)
    if len(ops) == 1:
        op = ops[0]

        def lane(cols, group):
            for thread in group:
                op(thread, thread.frames[-1].regs)

        return lane

    def lane(cols, group):
        for thread in group:
            regs = thread.frames[-1].regs
            for op in ops:
                op(thread, regs)

    return lane


def _finish_step(dirty_slots, const_pairs, end_index):
    slots = tuple(dirty_slots)
    pairs = tuple(const_pairs)
    if not slots and not pairs:

        def finish(cols, group):
            for thread in group:
                thread.frames[-1].index = end_index

        return finish

    def finish(cols, group):
        columns = [cols[slot].tolist() for slot in slots]
        for position, thread in enumerate(group):
            frame = thread.frames[-1]
            regs = frame.regs
            for slot, values in zip(slots, columns):
                regs[slot] = values[position]
            for slot, value in pairs:
                regs[slot] = value
            frame.index = end_index

    return finish


def compile_chunk(items, slots, kinds, end_index):
    """Compile a pure run into a ``group -> None`` vector chunk, or None.

    ``items`` is the run's ``(decoded entry, micro-op or None)`` pairs in
    program order (micro-op None for the register-effect-free NOP /
    PREDICT / DELAY, which only contribute to the folded end-index write).
    The compiled chunk is the drop-in SoA replacement for
    ``segments._make_chunk``: identical register/RNG/frame effects,
    different execution strategy.

    Compilation is a single static pass over the run:

    * **Constant forwarding/folding.** An instruction whose operands are
      all known scalars (immediates, or registers holding a statically
      known value) is evaluated *at compile time* with the executor's own
      scalar code and its destination becomes a known scalar — no column,
      no ``np.full``, no per-lane work. Known scalars flow into later
      vector ops as ufunc broadcast operands and are written back in the
      final per-thread loop (or just before a lane phase that reads
      them); a reused slot pays only its *last* constant.
    * **Vector ops** execute as masked/guarded ufunc calls over gathered
      float64 columns; gathers are emitted before first use, dirty
      columns are flushed back to the register lists before a lane phase
      reads them and invalidated when a lane phase overwrites them.
    * **Lane ops** (no bit-identical vector form) run thread-major in
      buffered phases between vector steps.
    * A final step scatters surviving dirty columns, writes surviving
      known constants, and sets the frame index once per thread.

    The compile-time cost model (:data:`_COST_TM` and friends) weighs the
    thread-major work absorbed against the ufunc calls and python loops
    the vector strategy pays; chunks whose modelled advantage falls below
    :data:`MIN_VECTOR_GAIN` return None and keep the thread-major chunk.
    """
    if _np is None or kinds is None:
        return None

    steps = []
    known = {}  # slot -> exact statically-known value
    virtual = set()  # known slots whose value is not yet in the regs lists
    loaded = set()  # slots with a live column
    dirty = set()  # slots whose column is newer than the regs lists
    lane_buffer = []
    lane_scatters = []  # dirty columns a buffered lane op reads
    lane_fills = []  # (slot, value) virtual constants a buffered lane op reads
    lane_writes = set()
    covered = 0  # micro ops the vector strategy absorbs
    cost = 0  # modelled vector-strategy cost, in _COST_* units

    def resolve(operand):
        """Classify an operand: known scalar, column, or None (object)."""
        if isinstance(operand, Imm):
            kind = _imm_kind(operand.value)
            if kind is KIND_OBJECT:
                return None
            return _Operand(None, operand.value, kind)
        if isinstance(operand, Reg):
            slot = slots[operand.name]
            if slot in known:
                value = known[slot]
                return _Operand(
                    None, value, KIND_FLOAT if type(value) is float else KIND_INT
                )
            kind = kinds[slot]
            if kind in (KIND_FLOAT, KIND_INT):
                return _Operand(slot, None, kind)
        return None

    def flush_lanes():
        nonlocal cost
        if not lane_buffer:
            return
        for slot in lane_scatters:
            steps.append(_scatter_step(slot))
            cost += _COST_LOOP
        if lane_fills:
            steps.append(_fill_step(lane_fills))
            cost += _COST_LOOP
        steps.append(_lane_step(lane_buffer))
        cost += _COST_LOOP
        loaded.difference_update(lane_writes)
        dirty.difference_update(lane_writes)
        lane_buffer.clear()
        lane_scatters.clear()
        lane_fills.clear()
        lane_writes.clear()

    for entry, micro in items:
        if micro is None:
            continue  # no register effect; index write handled at the end
        instr = entry.instr
        dst_slot = slots[instr.dst.name] if isinstance(instr.dst, Reg) else None

        if dst_slot is not None:
            value = _fold_scalar(instr, resolve)
            if value is not _NO_FOLD:
                if dst_slot in lane_writes:
                    # A buffered lane op writes this slot; the constant is
                    # ordered after it, so the phase must run first.
                    flush_lanes()
                known[dst_slot] = value
                virtual.add(dst_slot)
                loaded.discard(dst_slot)
                dirty.discard(dst_slot)
                covered += 1
                continue

        safe = loaded.difference(lane_writes) if lane_writes else loaded
        compiled = (
            _compile_vector(instr, slots, kinds, resolve, safe)
            if dst_slot is not None
            else None
        )
        if compiled is not None:
            compute, reads, op_cost = compiled
            flush_lanes()
            for slot in reads:
                if slot not in loaded:
                    steps.append(_gather_step(slot))
                    loaded.add(slot)
                    cost += _COST_LOOP
            steps.append(_vector_step(compute, dst_slot))
            known.pop(dst_slot, None)
            virtual.discard(dst_slot)
            loaded.add(dst_slot)
            dirty.add(dst_slot)
            cost += op_cost
            covered += 1
            continue

        # Thread-major lane op.
        reads, write = _entry_reads_writes(instr, slots)
        for slot in reads:
            if slot in virtual:
                lane_fills.append((slot, known[slot]))
                virtual.discard(slot)
            elif slot in dirty:
                lane_scatters.append(slot)
                dirty.discard(slot)
        lane_buffer.append(micro)
        if write is not None:
            lane_writes.add(write)
            known.pop(write, None)
            virtual.discard(write)
    flush_lanes()

    if not covered:
        return None
    const_pairs = sorted((slot, known[slot]) for slot in virtual)
    cost += _COST_LOOP + len(dirty) + len(const_pairs)
    if covered * _COST_TM - cost < MIN_VECTOR_GAIN:
        return None
    steps.append(_finish_step(sorted(dirty), const_pairs, end_index))
    steps = tuple(steps)

    def chunk(group):
        _silence_numpy()
        cols = {}
        for step in steps:
            step(cols, group)

    # The static cost-model inputs, exposed for the segment JIT: this
    # model priced the vector strategy against *interpreted* thread-major
    # micro-ops (_COST_TM). Compiled straight-line code is cheaper per
    # op, so the JIT re-runs the break-even with its own per-op cost
    # before electing to call this closure (repro.simt.jit).
    chunk.covered = covered
    chunk.vector_cost = cost
    return chunk
