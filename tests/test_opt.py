"""Optimizer tests: constant folding, DCE, CFG simplification, pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReconvergenceCompiler, collect_predictions
from repro.frontend import compile_kernel_source
from repro.ir import (
    Opcode,
    count_static_instructions,
    verify_module,
)
from repro.core.passes import run_opt_fixpoint
from repro.opt import dce_module, fold_module, simplify_module
from repro.simt import GPUMachine
from tests.helpers import listing1_module, loop_merge_source


def _instr_count(module):
    return sum(count_static_instructions(fn.blocks) for fn in module)


class TestConstFold:
    def test_folds_constant_arithmetic(self):
        module = compile_kernel_source(
            "kernel k() { let x = 2 + 3 * 4; store(tid(), x); }"
        )
        fold_module(module)
        fn = module.function("k")
        consts = [
            i.operands[0].value
            for _, _, i in fn.instructions()
            if i.opcode is Opcode.CONST
        ]
        assert 14 in consts

    def test_copy_propagation(self):
        module = compile_kernel_source(
            "kernel k() { let a = tid(); let b = a; store(b, 1.0); }"
        )
        fold_module(module)
        assert verify_module(module)

    def test_does_not_fold_guarded_division(self):
        # 1/0 must stay an executable div (interpreter defines it as 0).
        module = compile_kernel_source("kernel k() { store(tid(), 1 / 0); }")
        fold_module(module)
        fn = module.function("k")
        assert any(i.opcode is Opcode.DIV for _, _, i in fn.instructions())

    def test_fold_preserves_results(self):
        module = compile_kernel_source(
            "kernel k() { let x = (3 + 4) * tid() - 2; store(tid(), x); }"
        )
        reference = GPUMachine(module).launch("k", 8).memory.snapshot()
        fold_module(module)
        assert GPUMachine(module).launch("k", 8).memory.snapshot() == reference


class TestDCE:
    def test_removes_unused_values(self):
        module = compile_kernel_source(
            "kernel k() { let dead = tid() * 99; store(0, 1.0); }"
        )
        before = _instr_count(module)
        removed = dce_module(module)
        assert removed >= 2
        assert _instr_count(module) < before

    def test_keeps_stores_and_atomics(self):
        module = compile_kernel_source(
            "kernel k() { store(5, 1.0); let q = atomadd(9, 1); }"
        )
        dce_module(module)
        fn = module.function("k")
        opcodes = {i.opcode for _, _, i in fn.instructions()}
        assert Opcode.ST in opcodes and Opcode.ATOMADD in opcodes

    def test_keeps_rand_stream_position(self):
        # A dead rand() still advances the stream; deleting it would shift
        # all later draws.
        module = compile_kernel_source(
            "kernel k() { let dead = rand(); store(tid(), rand()); }"
        )
        reference = GPUMachine(module).launch("k", 4).memory.snapshot()
        dce_module(module)
        assert GPUMachine(module).launch("k", 4).memory.snapshot() == reference

    def test_keeps_barrier_ops(self):
        prog = ReconvergenceCompiler(allocate=False).compile(
            listing1_module(), mode="sr"
        )
        before = sum(
            1
            for _, _, i in prog.module.function("k").instructions()
            if i.is_barrier_op
        )
        dce_module(prog.module)
        after = sum(
            1
            for _, _, i in prog.module.function("k").instructions()
            if i.is_barrier_op
        )
        assert after == before


class TestSimplifyCFG:
    def test_folds_constant_branch(self):
        module = compile_kernel_source(
            "kernel k() { if (1) { store(0, 1.0); } else { store(0, 2.0); } }"
        )
        fold_module(module)
        simplify_module(module)
        fn = module.function("k")
        assert not any(i.opcode is Opcode.CBR for _, _, i in fn.instructions())
        result = GPUMachine(module).launch("k", 1)
        assert result.memory.load(0) == 1.0

    def test_preserves_labeled_blocks(self):
        module = compile_kernel_source(loop_merge_source())
        simplify_module(module)
        fn = module.function("lm")
        assert fn.blocks_with_label("L1")
        assert collect_predictions(fn)

    def test_merges_straightline_chains(self):
        module = compile_kernel_source(
            "kernel k() { let a = 1; if (tid() < 99) { let b = 2; } store(0, a); }"
        )
        before = len(module.function("k").blocks)
        fold_module(module)
        simplify_module(module)
        assert len(module.function("k").blocks) <= before
        assert verify_module(module)


class TestPipeline:
    def test_standard_pipeline_shrinks_workload(self):
        module = compile_kernel_source(loop_merge_source())
        before = _instr_count(module)
        report = run_opt_fixpoint(module)
        assert report.total_changes > 0
        assert _instr_count(module) < before
        assert "constfold" in report.describe()

    def test_optimize_then_sr_results_identical(self):
        module = compile_kernel_source(loop_merge_source())
        plain = ReconvergenceCompiler().compile(module, mode="sr")
        opted = ReconvergenceCompiler(optimize=True).compile(module, mode="sr")
        assert opted.report.opt_report is not None
        a = GPUMachine(plain.module).launch("lm", 32, args=(96,))
        b = GPUMachine(opted.module).launch("lm", 32, args=(96,))
        assert a.memory.snapshot() == b.memory.snapshot()
        assert b.cycles <= a.cycles  # optimization never slows the sim

    def test_fixpoint_converges(self):
        module = compile_kernel_source("kernel k() { store(0, 1.0); }")
        run_opt_fixpoint(module)
        second = run_opt_fixpoint(module)
        assert second.total_changes == 0


@st.composite
def foldable_kernel(draw):
    """Kernels mixing constant and thread-dependent arithmetic."""
    lines = ["let acc = 0.0;"]
    exprs = ["tid()", "1.5", "3"]
    for i in range(draw(st.integers(1, 8))):
        op = draw(st.sampled_from(["+", "-", "*"]))
        a = draw(st.sampled_from(exprs))
        b = draw(st.sampled_from(exprs + ["acc"]))
        lines.append(f"let v{i} = {a} {op} {b};")
        lines.append(f"acc = acc + v{i};")
        exprs.append(f"v{i}")
    lines.append("store(tid(), acc);")
    body = "\n    ".join(lines)
    return f"kernel k() {{\n    {body}\n}}"


class TestOptProperty:
    @settings(max_examples=40, deadline=None)
    @given(foldable_kernel())
    def test_optimization_preserves_semantics(self, source):
        module = compile_kernel_source(source)
        reference = GPUMachine(module.clone()).launch("k", 8).memory.snapshot()
        run_opt_fixpoint(module)
        assert verify_module(module)
        assert GPUMachine(module).launch("k", 8).memory.snapshot() == pytest.approx(
            reference
        )
