"""Regression guards for subtle bugs fixed during development.

Each test pins a failure mode that once existed, so refactors cannot
silently reintroduce it.
"""

import pytest

from repro.frontend import compile_kernel_source
from repro.ir import parse_module, format_module
from repro.simt import GPUMachine, GlobalMemory
from repro.workloads import get_workload


class TestWorkQueueAliasing:
    """A dynamic work queue must not share memory with output cells: a
    finished thread's store would corrupt the queue while other threads
    still poll it, double-processing tasks (found via the none-mode
    checksum test)."""

    @pytest.mark.parametrize("name", ("rsbench", "xsbench"))
    def test_queue_region_disjoint_from_output(self, name):
        workload = get_workload(name)
        memory = GlobalMemory()
        workload.setup(memory)
        queue_base, queue_size = memory.region("queue")
        out_base, out_size = memory.region("out")
        assert queue_base + queue_size <= out_base or out_base + out_size <= queue_base

    @pytest.mark.parametrize("name", ("rsbench", "xsbench"))
    def test_tasks_processed_exactly_once(self, name):
        # The queue counter ends at n_tasks + n_threads (each thread's
        # final failing grab), never higher.
        workload = get_workload(name)
        result = workload.run(mode="none")
        queue_base, _ = result.launch.memory.region("queue")
        n_tasks = workload.params["n_tasks"]
        assert result.launch.memory.load(queue_base) == n_tasks + workload.n_threads


class TestParserLineAmbiguity:
    """The IR text format is newline-free for the lexer; `%dst =` on the
    next line must not be consumed as an operand of the previous
    instruction (an early parser bug)."""

    def test_zero_operand_op_before_dst(self):
        text = """
func @k() kernel {
entry:
  %a = tid
  %b = add %a, 1
  exit
}
"""
        module = parse_module(text)
        fn = module.function("k")
        tid_instr = fn.block("entry").instructions[0]
        assert tid_instr.operands == []
        assert format_module(parse_module(format_module(module))) == format_module(module)


class TestCostScalingFloor:
    """Scaling latencies below 1 must clamp, not round to zero (which made
    whole kernels free and inverted speedups)."""

    def test_half_scale_keeps_alu_nonzero(self):
        from repro.ir import Opcode
        from repro.simt import CostModel

        model = CostModel().scaled(0.5)
        assert model.latency(Opcode.ADD) >= 1
        assert model.latency(Opcode.PREDICT) == 0  # zero stays zero


class TestSoftBarrierDegenerateThreshold:
    """Threshold <= 1 must never park (a pool of one would self-release
    anyway, but parking costs scheduler churn and once risked stalls)."""

    def test_threshold_one_runs_to_completion(self):
        module = compile_kernel_source(
            """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1, 1;
    for i in 0..6 {
        if (hash01(t + i) < 0.5) {
            label L1: acc = acc + 1.0;
        }
    }
    store(t, acc);
}
"""
        )
        from repro.core import compile_sr

        prog = compile_sr(module)
        result = GPUMachine(prog.module).launch("k", 32)
        assert result.simt_efficiency > 0


class TestDetectorSideRegions:
    """An if-without-else must not treat the join block as the 'else
    side' (once made every cheap guard look like a huge candidate)."""

    def test_join_side_is_empty(self):
        from repro.analysis.cfg_utils import CFGView
        from repro.analysis.dominators import compute_post_dominators
        from repro.core.autodetect import _side_region
        from repro.analysis.loops import compute_loops

        module = compile_kernel_source(
            """
kernel k() {
    let x = 0.0;
    for i in 0..4 {
        if (hash01(i) < 0.5) { x = x + 1.0; }
        x = x * 2.0;
    }
    store(0, x);
}
"""
        )
        fn = module.function("k")
        view = CFGView.of_function(fn)
        pdom = compute_post_dominators(view)
        nest = compute_loops(view)
        branch = next(
            b.name
            for b in fn.blocks
            if b.terminator.opcode.value == "cbr" and b.name != "for.head"
        )
        succs = view.succs[branch]
        join = pdom.nearest_common_post_dominator(succs)
        loop = nest.innermost_containing(branch)
        assert _side_region(view, branch, join, loop, join=join) == set()
