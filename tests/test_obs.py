"""repro.obs: events, sinks, stall metrics, pass spans, Chrome export.

Also pins the two observability invariants the subsystem guarantees:

* the ``trace=False`` fast path allocates **no** event objects, and
* results (per-thread stores, cycles, SIMT efficiency) are bit-identical
  with observability on vs. off, across all three schedulers.
"""

import json

import pytest

from repro import compile_kernel_source, compile_sr
from repro.core import compile_baseline
from repro.ir import Opcode
from repro.obs import (
    CallbackSink,
    Histogram,
    IssueEvent,
    ListSink,
    NULL_SINK,
    STALL_BARRIER,
    STALL_DIVERGED,
    STALL_FINISHED,
    chrome_trace,
    module_stats,
    write_chrome_trace,
)
from repro.simt import SCHEDULERS, GPUMachine, StackGPUMachine
from repro.workloads import get_workload

DIVERGENT = """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..10 {
        if (hash01(t * 13.0 + i) < 0.3) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""

FAST_FUNCCALL = {"iterations": 6, "shade_cost": 8, "else_extra": 2}


def _sr_module():
    return compile_sr(compile_kernel_source(DIVERGENT)).module


class TestEvents:
    def test_issue_event_unpacks_as_legacy_tuple(self):
        event = IssueEvent(
            warp_id=3, function="f", block="b", index=2, opcode=Opcode.ADD,
            lanes=frozenset({0, 1}), ts=10, dur=4, active=2,
        )
        wid, fn, blk, lanes = event
        assert (wid, fn, blk, lanes) == (3, "f", "b", frozenset({0, 1}))
        assert event[0] == 3 and event[2] == "b"
        assert len(event) == 4
        assert event.ts == 10 and event.dur == 4

    def test_to_dict_sorts_lanes(self):
        event = IssueEvent(
            warp_id=0, function="f", block="b", index=0, opcode=Opcode.ADD,
            lanes=frozenset({5, 1}), ts=0, dur=1, active=2,
        )
        data = event.to_dict()
        assert data["kind"] == "issue"
        assert data["lanes"] == [1, 5]


class TestSinks:
    def test_null_sink_disabled(self):
        assert NULL_SINK.enabled is False

    def test_list_sink_collects_all_kinds(self):
        sink = ListSink()
        launch = GPUMachine(_sr_module(), sink=sink).launch("k", 32)
        kinds = {e.kind for e in sink}
        assert "issue" in kinds
        assert "barrier_arrive" in kinds
        assert "barrier_release" in kinds
        assert "reconverge" in kinds
        assert "diverge" in kinds
        assert len(sink.of_kind("issue")) == launch.profiler.issued
        assert len(sink) > launch.profiler.issued

    def test_callback_sink_streams(self):
        seen = []
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        GPUMachine(module, sink=CallbackSink(seen.append)).launch("k", 4)
        assert seen and all(e.kind == "issue" for e in seen)

    def test_events_cycle_stamped_in_issue_order(self):
        sink = ListSink()
        GPUMachine(_sr_module(), sink=sink).launch("k", 32)
        issues = sink.of_kind("issue")
        for prev, cur in zip(issues, issues[1:]):
            assert cur.ts == prev.ts + prev.dur  # one warp: seamless slices


class TestFastPathAllocationFree:
    def test_no_event_objects_without_observability(self, monkeypatch):
        """trace=False + no sink + no metrics must never build an event."""
        def boom(*args, **kwargs):
            raise AssertionError("event allocated on the fast path")

        import repro.simt.executor as executor_mod
        import repro.simt.profiler as profiler_mod
        import repro.simt.stack_machine as stack_mod

        for name in ("IssueEvent", "DivergeEvent", "BarrierArriveEvent",
                     "BarrierReleaseEvent", "ReconvergeEvent"):
            if hasattr(executor_mod, name):
                monkeypatch.setattr(executor_mod, name, boom)
        monkeypatch.setattr(profiler_mod, "IssueEvent", boom)
        monkeypatch.setattr(stack_mod, "ReconvergeEvent", boom)

        module = _sr_module()
        launch = GPUMachine(module).launch("k", 32)
        assert launch.profiler.trace is None
        assert launch.metrics is None
        stack = StackGPUMachine(module).launch("k", 32)
        assert stack.profiler.trace is None

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_results_bit_identical_with_observability(self, scheduler):
        workload = get_workload("funccall", **FAST_FUNCCALL)
        compiled = workload.compile(mode="sr")
        plain = workload.run(
            mode="sr", compiled=compiled, scheduler=scheduler
        )
        observed = workload.run(
            mode="sr", compiled=compiled, scheduler=scheduler,
            trace=True, metrics=True, sink=ListSink(),
        )
        assert plain.cycles == observed.cycles
        assert plain.simt_efficiency == observed.simt_efficiency
        assert plain.issued == observed.issued
        assert (
            plain.launch.store_traces() == observed.launch.store_traces()
        )
        assert (
            plain.launch.memory.snapshot()
            == observed.launch.memory.snapshot()
        )


class TestLaunchMetrics:
    @pytest.mark.parametrize(
        "name,params",
        [("funccall", FAST_FUNCCALL), ("mcb", {"steps": 8})],
    )
    def test_attribution_sums_to_total_cycles(self, name, params):
        workload = get_workload(name, **params)
        result = workload.run(mode="sr", metrics=True)
        metrics = result.launch.metrics
        profiler = result.launch.profiler
        assert metrics.check_attribution()  # per warp, per lane
        assert metrics.warp_cycles == profiler.warp_cycles
        for wid, lanes in metrics.lane_attribution.items():
            attribution = metrics.warp_attribution(wid)
            assert sum(attribution.values()) == (
                profiler.warp_cycles[wid] * len(lanes)
            )

    def test_stall_reasons_populated_on_divergent_kernel(self):
        launch = GPUMachine(_sr_module(), metrics=True).launch("k", 32)
        stalls = launch.metrics.stall_cycles()
        assert set(stalls) == {STALL_BARRIER, STALL_DIVERGED, STALL_FINISHED}
        assert stalls[STALL_BARRIER] > 0
        assert stalls[STALL_DIVERGED] > 0
        assert launch.metrics.active_cycles() > 0

    def test_partial_warp_finished_lanes(self):
        # 8 threads retire at different times -> "finished" stalls accrue.
        module = compile_kernel_source(
            "kernel k() { if (tid() < 2) { let x = sin(1.0); let y = x; } "
            "store(tid(), 1.0); }"
        )
        launch = GPUMachine(module, metrics=True).launch("k", 8)
        assert launch.metrics.check_attribution()

    def test_barrier_wait_distributions(self):
        launch = GPUMachine(_sr_module(), metrics=True).launch("k", 32)
        metrics = launch.metrics
        assert metrics.barrier_occupancy
        name, hist = next(iter(metrics.barrier_occupancy.items()))
        assert hist.count > 0
        assert metrics.barrier_wait[name].count > 0
        assert metrics.barrier_wait[name].mean >= 0

    def test_divergence_depth_histogram(self):
        launch = GPUMachine(_sr_module(), metrics=True).launch("k", 32)
        depth = launch.metrics.divergence_depth
        assert depth.count > 0
        assert depth.max >= 2  # the kernel definitely diverges

    def test_summary_includes_stalls(self):
        launch = GPUMachine(_sr_module(), metrics=True).launch("k", 32)
        summary = launch.profiler.summary()
        assert summary["stall_cycles"][STALL_BARRIER] > 0
        data = launch.metrics.summary()
        assert json.dumps(data)  # JSON-ready
        assert data["active_lane_cycles"] > 0

    def test_metrics_none_by_default(self):
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        launch = GPUMachine(module).launch("k", 4)
        assert launch.metrics is None


class TestHistogram:
    def test_moments(self):
        hist = Histogram()
        for value in (2, 2, 6):
            hist.add(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(10 / 3)
        assert (hist.min, hist.max) == (2, 6)

    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0 and hist.mean == 0.0
        assert hist.to_dict()["values"] == {}


class TestSpans:
    def test_sr_compile_records_phases(self):
        program = compile_sr(compile_kernel_source(DIVERGENT))
        names = [span.name for span in program.report.spans]
        # One span per pass-manager pass, plus nested analysis spans
        # (an inner span is appended before the pass that requested it).
        assert names == [
            "collect-predictions",
            "analysis:divergence",
            "pdom-sync",
            "sr-insert",
            "deconflict",
            "strip-directives",
            "analysis:memeffects",
            "mem-effects",
            "allocate",
            "verify",
        ]
        for span in program.report.spans:
            assert span.duration >= 0
            assert span.end >= span.start

    def test_ir_deltas_show_barrier_insertion(self):
        program = compile_sr(compile_kernel_source(DIVERGENT))
        by_name = {span.name: span for span in program.report.spans}
        assert by_name["pdom-sync"].ir_delta["barrier_instructions"] > 0
        assert by_name["sr-insert"].ir_delta["barrier_instructions"] > 0
        assert by_name["verify"].ir_delta["instructions"] == 0

    def test_mode_none_spans(self):
        from repro.core.pipeline import ReconvergenceCompiler

        program = ReconvergenceCompiler().compile(
            compile_kernel_source(DIVERGENT), mode="none"
        )
        names = [span.name for span in program.report.spans]
        assert names == [
            "strip-directives",
            "analysis:memeffects",
            "mem-effects",
            "allocate",
            "verify",
        ]

    def test_module_stats_counts(self):
        module = compile_kernel_source(DIVERGENT)
        stats = module_stats(module)
        assert stats.functions == 1
        assert stats.blocks >= 4
        assert stats.instructions > 10
        assert stats.barrier_instructions == 0  # not compiled yet

    def test_describe_mentions_delta(self):
        program = compile_sr(compile_kernel_source(DIVERGENT))
        text = program.report.describe(with_spans=True)
        assert "span: pdom-sync" in text


class TestChromeTrace:
    def _traced(self):
        program = compile_sr(compile_kernel_source(DIVERGENT))
        sink = ListSink()
        GPUMachine(program.module, sink=sink).launch("k", 32)
        return sink, program.report

    def test_contains_both_layers(self):
        sink, report = self._traced()
        data = chrome_trace(events=sink.events, report=report)
        events = data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"
        compiler = [e for e in events if e["pid"] == 0 and e["ph"] == "X"]
        simulator = [e for e in events if e["pid"] == 1 and e["ph"] == "X"]
        assert compiler and simulator
        names = {e["name"] for e in compiler}
        assert "pdom-sync" in names and "verify" in names

    def test_event_shapes_are_valid(self):
        sink, report = self._traced()
        for event in chrome_trace(events=sink.events,
                                  report=report)["traceEvents"]:
            assert "name" in event and "ph" in event and "pid" in event
            if event["ph"] in ("X", "i", "C"):
                assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_instants_and_counters_present(self):
        sink, report = self._traced()
        events = chrome_trace(events=sink.events, report=report)["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "M", "i", "C"} <= phases

    def test_launch_trace_fallback(self):
        program = compile_baseline(compile_kernel_source(DIVERGENT))
        launch = GPUMachine(program.module, trace=True).launch("k", 32)
        data = chrome_trace(launch=launch)
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == launch.profiler.issued

    def test_write_round_trips(self, tmp_path):
        sink, report = self._traced()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, events=sink.events, report=report)
        parsed = json.loads(path.read_text())
        assert parsed["traceEvents"]


class TestStackMachineObservability:
    def test_trace_and_reconverge_events(self):
        module = compile_baseline(compile_kernel_source(DIVERGENT)).module
        sink = ListSink()
        launch = StackGPUMachine(module, trace=True, sink=sink).launch("k", 32)
        assert launch.profiler.trace  # cycle-stamped issues
        assert sink.of_kind("reconverge")  # structural pops
        assert sink.of_kind("diverge")
        # No convergence barriers exist pre-Volta.
        assert not sink.of_kind("barrier_arrive")

    def test_attribution_holds_on_stack_machine(self):
        module = compile_baseline(compile_kernel_source(DIVERGENT)).module
        launch = StackGPUMachine(module, metrics=True).launch("k", 32)
        metrics = launch.metrics
        assert metrics.check_attribution()
        stalls = metrics.stall_cycles()
        assert stalls[STALL_BARRIER] == 0  # nothing ever parks
        assert stalls[STALL_DIVERGED] > 0
