"""Workload framework: Table 2 benchmarks as kernels on the simulator.

Each workload supplies a kernel (written in the textual kernel language,
annotated with ``predict``/``label`` the way the paper's programmers
annotated CUDA sources), its memory setup, and launch configuration.
``Workload.run`` compiles in a given mode and executes on the simulator,
returning a :class:`WorkloadResult` with the metrics of Figures 7–9.

Workloads use *static* thread coarsening (task = tid + k·n_threads) and
task-keyed ``hash01`` randomness so results are schedule-invariant — the
correctness tests compare memory bit-for-bit across all modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program_cache import compile_cached
from repro.errors import WorkloadError
from repro.frontend.parser import compile_kernel_source
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory

REGISTRY = {}

#: (class, workload name, params) -> lowered module, shared across workload
#: instances. ``get_workload`` builds a fresh instance per call, so without
#: this every sweep point re-parses and re-lowers an identical kernel. Safe
#: because the compiler clones its input and the machines never mutate a
#: module.
_MODULE_CACHE = {}


def register(cls):
    """Class decorator adding a workload to the global registry."""
    if cls.name in REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def workload_names():
    return sorted(REGISTRY)


def get_workload(name, **params):
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None
    return cls(**params)


def all_workloads(**params):
    return [cls(**params.get(name, {})) for name, cls in sorted(REGISTRY.items())]


@dataclass
class WorkloadResult:
    """Metrics from one compiled-and-simulated workload run."""

    workload: str
    mode: str
    threshold: object
    simt_efficiency: float
    cycles: int
    issued: int
    barrier_issues: int
    checksum: float
    launch: object = field(repr=False, default=None)

    def speedup_over(self, other):
        return other.cycles / self.cycles if self.cycles else float("inf")

    def efficiency_gain_over(self, other):
        if other.simt_efficiency == 0:
            return float("inf")
        return self.simt_efficiency / other.simt_efficiency


class Workload:
    """Base class; subclasses define source, memory, and metadata."""

    #: registry key, e.g. "rsbench"
    name = None
    #: one-line description mirroring Table 2
    description = ""
    #: divergence pattern: "loop-merge", "iteration-delay", or "func-call"
    pattern = None
    #: paper-reported context used in EXPERIMENTS.md
    paper_note = ""
    #: kernel entry point name
    kernel_name = "main"
    #: the threshold the "user" picked (None = hard barrier)
    sr_threshold = None
    #: False when task-to-thread assignment is timing-dependent (dynamic
    #: work queues): per-cell memory then differs across schedules and only
    #: the aggregate checksum is comparable.
    deterministic_memory = True
    #: default launch width (one warp keeps simulations fast; the trends
    #: are per-warp properties)
    n_threads = 32
    #: per-workload parameter defaults
    defaults = {}

    def __init__(self, **params):
        merged = dict(self.defaults)
        unknown = set(params) - set(merged)
        if unknown:
            raise WorkloadError(
                f"{self.name}: unknown parameters {sorted(unknown)}"
            )
        merged.update(params)
        self.params = merged
        self._module = None

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def source(self):
        """Kernel-language source text (annotated with predict/label)."""
        raise NotImplementedError

    def setup(self, memory):
        """Initialize ``memory``; return the kernel argument tuple."""
        raise NotImplementedError

    def checksum(self, launch):
        """A schedule-invariant digest of the results (default: sum of all
        written memory cells, rounded to tame float noise)."""
        cells = launch.memory.snapshot()
        return round(sum(float(v) for v in cells.values()), 4)

    # ------------------------------------------------------------------
    # Compilation and execution
    # ------------------------------------------------------------------
    def module(self):
        """The lowered (uncompiled) IR module, shared across instances with
        identical parameters (the source text depends only on them)."""
        if self._module is None:
            try:
                key = (type(self), self.name, tuple(sorted(self.params.items())))
                cached = _MODULE_CACHE.get(key)
            except TypeError:
                key = None
                cached = None
            if cached is None:
                cached = compile_kernel_source(
                    self.source(), module_name=self.name
                )
                if key is not None:
                    _MODULE_CACHE[key] = cached
            self._module = cached
        return self._module

    def compile(self, mode="sr", threshold="default", pipeline=None,
                **compiler_options):
        """Compile with the reconvergence pipeline.

        ``threshold="default"`` uses the workload's ``sr_threshold`` (the
        "user's" choice); pass ``None`` explicitly for a hard barrier.
        ``pipeline`` replaces the mode's registered pass pipeline with an
        arbitrary description (see :mod:`repro.core.passmgr`).
        """
        if threshold == "default":
            threshold = self.sr_threshold
        return compile_cached(
            self.module(), mode=mode, threshold=threshold, pipeline=pipeline,
            **compiler_options
        )

    def run(
        self,
        mode="sr",
        threshold="default",
        scheduler="convergence",
        seed=2020,
        compiled=None,
        auto_options=None,
        pipeline=None,
        trace=False,
        sink=None,
        metrics=False,
        **compiler_options,
    ):
        """Compile (unless ``compiled`` given) and simulate one launch.

        ``threshold="default"`` uses the workload's ``sr_threshold``;
        ``None`` forces a hard barrier; an int sets a soft threshold.
        ``pipeline`` overrides the mode's registered pass pipeline.
        ``trace``/``sink``/``metrics`` enable repro.obs observability on
        the launch (all off by default).
        """
        if threshold == "default":
            threshold = self.sr_threshold
        if compiled is None:
            compiled = compile_cached(
                self.module(),
                mode=mode,
                threshold=threshold,
                auto_options=auto_options,
                pipeline=pipeline,
                **compiler_options,
            )
        memory = GlobalMemory()
        args = self.setup(memory)
        machine = GPUMachine(
            compiled.module, scheduler=scheduler, seed=seed,
            trace=trace, sink=sink, metrics=metrics,
        )
        launch = machine.launch(
            self.kernel_name, self.n_threads, args=args, memory=memory
        )
        return WorkloadResult(
            workload=self.name,
            mode=mode,
            threshold=threshold,
            simt_efficiency=launch.simt_efficiency,
            cycles=launch.cycles,
            issued=launch.profiler.issued,
            barrier_issues=launch.profiler.barrier_issues,
            checksum=self.checksum(launch),
            launch=launch,
        )

    def compare(self, seed=2020, scheduler="convergence"):
        """(baseline, sr) result pair with the workload's own threshold."""
        baseline = self.run(mode="baseline", seed=seed, scheduler=scheduler)
        optimized = self.run(mode="sr", seed=seed, scheduler=scheduler)
        return baseline, optimized

    def __repr__(self):
        return f"<Workload {self.name} {self.params}>"


def repeat_lines(line, count, indent=12):
    """Source-generation helper: ``count`` copies of ``line``."""
    pad = " " * indent
    return "\n".join(pad + line for _ in range(count))
