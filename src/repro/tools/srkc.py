"""srkc — the kernel-language compiler driver.

Compile a ``.srk`` source file through the reconvergence pipeline, dump
the resulting IR, and optionally run it on the simulator::

    python -m repro.tools.srkc kernel.srk --mode sr --emit-ir
    python -m repro.tools.srkc kernel.srk --mode sr --run --threads 64 \\
        --args 100 0 --compare-baseline

Kernel arguments are passed as numbers via ``--args``; memory starts
zeroed, and the final contents of every written cell are printed with
``--dump-memory``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.pipeline import ReconvergenceCompiler
from repro.frontend.parser import compile_kernel_source
from repro.ir.printer import format_module
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory


def _parse_number(text):
    try:
        return int(text)
    except ValueError:
        return float(text)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="srkc", description="kernel-language compiler + simulator driver"
    )
    parser.add_argument("source", help="path to a .srk kernel source file")
    parser.add_argument(
        "--mode",
        default="sr",
        choices=("baseline", "sr", "auto", "none"),
        help="reconvergence strategy (default: sr)",
    )
    parser.add_argument(
        "--threshold",
        type=int,
        default=None,
        help="soft-barrier threshold (default: hard barrier / source attrs)",
    )
    parser.add_argument(
        "--deconfliction", default="dynamic", choices=("dynamic", "static")
    )
    parser.add_argument(
        "--optimize", action="store_true", help="run constfold/DCE/simplify first"
    )
    parser.add_argument("--emit-ir", action="store_true", help="print compiled IR")
    parser.add_argument("--report", action="store_true", help="print the pass report")
    parser.add_argument("--run", action="store_true", help="simulate a launch")
    parser.add_argument("--kernel", default=None, help="kernel to launch (default: first)")
    parser.add_argument("--threads", type=int, default=32)
    parser.add_argument("--args", nargs="*", default=[], help="kernel arguments")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--compare-baseline",
        action="store_true",
        help="also run the PDOM baseline and report the speedup",
    )
    parser.add_argument("--dump-memory", action="store_true")
    return parser


def _launch(program, kernel, threads, args, seed):
    machine = GPUMachine(program.module, seed=seed)
    return machine.launch(kernel, threads, args=args, memory=GlobalMemory())


def main(argv=None):
    args = build_parser().parse_args(argv)
    with open(args.source) as handle:
        source = handle.read()
    module = compile_kernel_source(source, module_name=args.source)

    compiler = ReconvergenceCompiler(
        deconfliction=args.deconfliction, optimize=args.optimize
    )
    program = compiler.compile(module, mode=args.mode, threshold=args.threshold)

    if args.emit_ir:
        print(format_module(program.module))
    if args.report:
        print(program.report.describe())
        if program.report.opt_report is not None:
            print("opt:", program.report.opt_report.describe())

    if not args.run:
        return 0

    kernels = program.module.kernels()
    if not kernels:
        print("error: no kernel in module", file=sys.stderr)
        return 1
    kernel = args.kernel or kernels[0].name
    kernel_args = tuple(_parse_number(a) for a in args.args)

    result = _launch(program, kernel, args.threads, kernel_args, args.seed)
    print(
        f"[{args.mode}] SIMT efficiency {result.simt_efficiency:.1%}, "
        f"cycles {result.cycles}, issued {result.profiler.issued}"
    )

    if args.compare_baseline and args.mode != "baseline":
        baseline_prog = compiler.compile(module, mode="baseline")
        baseline = _launch(
            baseline_prog, kernel, args.threads, kernel_args, args.seed
        )
        print(
            f"[baseline] SIMT efficiency {baseline.simt_efficiency:.1%}, "
            f"cycles {baseline.cycles}"
        )
        print(f"speedup: {baseline.cycles / result.cycles:.2f}x")

    if args.dump_memory:
        for address, value in sorted(result.memory.snapshot().items()):
            print(f"  mem[{address}] = {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
