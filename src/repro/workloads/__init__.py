"""Table 2 workloads plus the Figure 2(c) microbenchmark and §5.4 corpus."""

from repro.workloads import (  # noqa: F401  (imports populate the registry)
    gpu_mcml,
    mc_gpu,
    mcb,
    meiyamd5,
    micro_funccall,
    mummer,
    optix_trace,
    pathtracer,
    rsbench,
    xsbench,
)
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadResult,
    all_workloads,
    get_workload,
    register,
    workload_names,
)
from repro.workloads.grid_corpus import (
    GRID_CTA_DIM,
    GRID_GRID_DIM,
    GRID_REGISTRY,
    GridApp,
    get_grid_app,
    grid_corpus,
)

#: Workloads evaluated in Figure 7 / Figure 8 (Table 2 order).
FIGURE7_WORKLOADS = (
    "rsbench",
    "xsbench",
    "mcb",
    "pathtracer",
    "mc-gpu",
    "mummer",
    "meiyamd5",
    "optix",
    "gpu-mcml",
)

__all__ = [
    "FIGURE7_WORKLOADS",
    "GRID_CTA_DIM",
    "GRID_GRID_DIM",
    "GRID_REGISTRY",
    "GridApp",
    "REGISTRY",
    "Workload",
    "WorkloadResult",
    "all_workloads",
    "get_grid_app",
    "get_workload",
    "grid_corpus",
    "register",
    "workload_names",
]
