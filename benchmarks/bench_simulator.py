"""Raw substrate throughput: simulator issue rate and compile time.

Not a paper figure — tracks the reproduction's own performance so workload
presets stay affordable.
"""

from repro.core import ReconvergenceCompiler
from repro.workloads import get_workload


def test_simulator_issue_throughput(benchmark):
    workload = get_workload("mcb", steps=16)
    compiled = workload.compile(mode="baseline")

    def launch():
        return workload.run(mode="baseline", compiled=compiled)

    result = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert result.issued > 0
    rate = result.issued / benchmark.stats.stats.mean
    print(f"\nsimulator throughput: {rate:,.0f} issues/s "
          f"({result.issued} issues per launch)")


def test_compile_throughput(benchmark):
    workload = get_workload("rsbench")
    module = workload.module()
    compiler = ReconvergenceCompiler()

    def compile_sr():
        return compiler.compile(module, mode="sr", threshold=16)

    prog = benchmark.pedantic(compile_sr, rounds=5, iterations=1)
    assert prog.report.sr_reports
