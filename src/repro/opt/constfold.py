"""Constant folding and copy propagation.

A local (per-block) value-tracking pass: registers holding known constants
fold into their users; ``mov`` chains propagate. Being local keeps the
pass trivially sound in the non-SSA IR — a register is only trusted while
no intervening redefinition occurred, and the map resets at block entry.

Barrier, memory, control and marker instructions are never touched beyond
operand substitution.
"""

from __future__ import annotations

import math

from repro.ir.instructions import (
    BINARY_OPS,
    Imm,
    Opcode,
    Reg,
    UNARY_OPS,
)

_BINARY_FOLD = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SHL: lambda a, b: int(a) << int(b),
    Opcode.SHR: lambda a, b: int(a) >> int(b),
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CMPGT: lambda a, b: 1 if a > b else 0,
    Opcode.CMPGE: lambda a, b: 1 if a >= b else 0,
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPNE: lambda a, b: 1 if a != b else 0,
}

_UNARY_FOLD = {
    Opcode.MOV: lambda a: a,
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: 0 if a != 0 else 1,
    Opcode.FLOOR: lambda a: int(math.floor(a)),
    Opcode.ABS: abs,
}

# DIV/REM and transcendental folds are skipped: the interpreter's guarded
# semantics (divide-by-zero -> 0, exp clamping) must stay bit-identical
# and duplicating them here would be a second source of truth.


def fold_function(function):
    """Fold constants in every block; returns the number of rewrites."""
    rewrites = 0
    for block in function.blocks:
        known = {}   # Reg -> constant value
        copies = {}  # Reg -> Reg (trusted within the block)
        for instr in block.instructions:
            # Substitute known operands first.
            new_operands = []
            for operand in instr.operands:
                if isinstance(operand, Reg):
                    if operand in known:
                        new_operands.append(Imm(known[operand]))
                        rewrites += 1
                        continue
                    if operand in copies:
                        new_operands.append(copies[operand])
                        rewrites += 1
                        continue
                new_operands.append(operand)
            instr.operands = new_operands

            # Invalidate anything the instruction redefines.
            if instr.dst is not None:
                known.pop(instr.dst, None)
                copies.pop(instr.dst, None)
                for key, value in list(copies.items()):
                    if value == instr.dst:
                        del copies[key]

            # Learn new facts / fold the instruction itself.
            opcode = instr.opcode
            if opcode is Opcode.CONST:
                known[instr.dst] = instr.operands[0].value
            elif opcode is Opcode.MOV:
                source = instr.operands[0]
                if isinstance(source, Imm):
                    known[instr.dst] = source.value
                elif isinstance(source, Reg):
                    copies[instr.dst] = source
            elif (
                opcode in _BINARY_FOLD
                and opcode in BINARY_OPS
                and all(isinstance(op, Imm) for op in instr.operands)
            ):
                value = _BINARY_FOLD[opcode](
                    instr.operands[0].value, instr.operands[1].value
                )
                instr.opcode = Opcode.CONST
                instr.operands = [Imm(value)]
                known[instr.dst] = value
                rewrites += 1
            elif (
                opcode in _UNARY_FOLD
                and opcode in UNARY_OPS
                and isinstance(instr.operands[0], Imm)
            ):
                value = _UNARY_FOLD[opcode](instr.operands[0].value)
                instr.opcode = Opcode.CONST
                instr.operands = [Imm(value)]
                known[instr.dst] = value
                rewrites += 1
            elif opcode is Opcode.FMA and all(
                isinstance(op, Imm) for op in instr.operands
            ):
                a, b, c = (op.value for op in instr.operands)
                instr.opcode = Opcode.CONST
                instr.operands = [Imm(a * b + c)]
                known[instr.dst] = a * b + c
                rewrites += 1
    return rewrites


def fold_module(module):
    return sum(fold_function(fn) for fn in module)
