"""MCB: LLNL Monte Carlo Benchmark (Table 2).

"A Monte Carlo benchmark used to test performance of parallel
architectures. Simulates a simplified variant of the heuristic transport
equation." Each particle takes a fixed number of flight steps; on a
randomly divergent subset of steps the particle undergoes an expensive
collision (scatter + tally). This is the Figure 2(a) *Iteration Delay*
shape: the divergent condition's then-side is the expensive common code,
and the predicted reconvergence point sits at its entry.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class MCB(Workload):
    name = "mcb"
    description = (
        "LLNL Monte Carlo transport benchmark; divergent collision events "
        "inside the particle stepping loop (Iteration Delay)"
    )
    pattern = "iteration-delay"
    paper_note = "Iteration Delay on the collision branch of the step loop."
    kernel_name = "mcb_transport"
    sr_threshold = 12
    defaults = {
        "steps": 32,
        "collision_prob": 0.10,
        "collision_cost": 80,   # instructions in the collision handler
    }

    def source(self):
        p = self.params
        collision = repeat_lines(
            "w = fma(w, 0.97, 0.03);", p["collision_cost"] // 2
        )
        collision2 = repeat_lines(
            "tally = fma(w, w, tally);", p["collision_cost"] - p["collision_cost"] // 2
        )
        return f"""
kernel mcb_transport(n_steps, tallies) {{
    let t = tid();
    let w = 1.0;
    let tally = 0.0;
    predict L1;
    for i in 0..n_steps {{
        // Prolog: advance the particle one flight step (cheap).
        let u = hash01(t * 977.0 + i * 83.0);
        w = w * 0.999;
        if (u < {p['collision_prob']}) {{
            // Proposed reconvergence point: expensive collision physics.
            label L1: w = w * 0.95;
{collision}
{collision2}
        }}
        // Epilog: bookkeeping.
        tally = tally + w * 0.0001;
    }}
    store(tallies + t, tally);
}}
"""

    def setup(self, memory):
        tallies = memory.alloc(self.n_threads, name="tallies")
        return (self.params["steps"], tallies)
