"""MeiyaMD5: MD5 hash-reverse search (Table 2).

"Contains a load-imbalanced, compute-heavy inner loop making it the ideal
candidate for Loop Merge" (Section 5.4) — one of the automatically detected
applications of Figure 10 with the largest upside.

Each task tests one candidate password: the inner loop runs the MD5-style
round function once per candidate character, so trip counts follow the
(heavily imbalanced) candidate-length distribution, while the prolog that
fetches the next candidate is nearly free. Compute-heavy body + tiny
refill = the best case for Speculative Reconvergence.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class MeiyaMD5(Workload):
    name = "meiyamd5"
    description = (
        "MD5 hash-reverse search; load-imbalanced compute-heavy inner loop "
        "(candidate lengths), the ideal Loop Merge candidate"
    )
    pattern = "loop-merge"
    paper_note = (
        "Figure 10 automatic-detection winner; ideal Loop Merge candidate."
    )
    kernel_name = "md5_reverse"
    sr_threshold = None
    defaults = {
        "candidates_per_thread": 4,
        "len_lo": 1,
        "len_hi": 56,
        "round_cost": 36,
    }

    def source(self):
        p = self.params
        # An integer-heavy mix shaped like the MD5 round function:
        # F(b,c,d) rotations and additive constants.
        third = p["round_cost"] // 3
        round_a = repeat_lines("a = bitor(bitand(xor(a, b), 65535), shr(c, 3));", third)
        round_b = repeat_lines("b = bitand(b + a * 31 + 2654435, 1048575);", third)
        round_c = repeat_lines(
            "c = xor(bitand(shl(c, 1), 1048575), shr(a, 2));",
            p["round_cost"] - 2 * third,
        )
        return f"""
kernel md5_reverse(n_candidates, hits) {{
    let cand = tid();
    let found = 0;
    predict L1;
    while (cand < n_candidates) {{
        // Prolog: fetch the next candidate (nearly free).
        let a = cand * 2654435761 % 1048576;
        let b = 271828;
        let c = 314159;
        // Candidate length: heavy-tailed (most short, some very long).
        let u = hash01(cand * 0.577215);
        let len = floor(u * u * u * {p['len_hi'] - p['len_lo']}.0) + {p['len_lo']};
        let ch = 0;
        while (ch < len) {{
            // Proposed reconvergence point: one MD5-style round.
            label L1: a = (a + ch) and 1048575;
{round_a}
{round_b}
{round_c}
            ch = ch + 1;
        }}
        // Epilog: compare digest against the target (cheap).
        if (xor(xor(a, b), c) % 4096 == 0) {{
            found = found + 1;
        }}
        cand = cand + 32;
    }}
    store(hits + tid(), found);
}}
"""

    def setup(self, memory):
        hits = memory.alloc(self.n_threads, name="hits")
        n_candidates = self.params["candidates_per_thread"] * self.n_threads
        return (n_candidates, hits)
