"""Imperative IR construction helper.

The builder tracks a current insertion block and provides one emit method per
opcode family, returning the destination register where applicable::

    fn = Function("k", is_kernel=True)
    b = IRBuilder(fn)
    b.set_block(fn.new_block("entry"))
    i = b.const(0)
    ...
    b.cbr(pred, "body", "exit")
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import (
    Barrier,
    BlockRef,
    FuncRef,
    Imm,
    Instruction,
    Opcode,
    Reg,
)


def _as_operand(value):
    """Coerce Python values to IR operands (numbers become immediates)."""
    if isinstance(value, (Reg, Imm, Barrier, BlockRef, FuncRef)):
        return value
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, (int, float)):
        return Imm(value)
    raise IRError(f"cannot use {value!r} as an IR operand")


def _as_barrier(value):
    if isinstance(value, (Barrier, Reg)):
        return value
    if isinstance(value, str):
        return Barrier(value)
    raise IRError(f"cannot use {value!r} as a barrier operand")


class IRBuilder:
    """Builds instructions into a current block of a function."""

    def __init__(self, function, block=None):
        self.function = function
        self.block = block

    def set_block(self, block):
        if isinstance(block, str):
            block = self.function.block(block)
        self.block = block
        return block

    def new_block(self, hint="bb", attrs=None, switch=False):
        block = self.function.new_block(hint, attrs=attrs)
        if switch:
            self.block = block
        return block

    def emit(self, opcode, dst=None, operands=(), **attrs):
        if self.block is None:
            raise IRError("builder has no current block")
        instr = Instruction(opcode, dst=dst, operands=list(operands), attrs=attrs)
        return self.block.append(instr)

    def _emit_value(self, opcode, operands, hint, **attrs):
        dst = self.function.new_reg(hint)
        self.emit(opcode, dst=dst, operands=[_as_operand(v) for v in operands], **attrs)
        return dst

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def const(self, value, hint="c"):
        return self._emit_value(Opcode.CONST, [value], hint)

    def mov(self, src, hint="m"):
        return self._emit_value(Opcode.MOV, [src], hint)

    def mov_to(self, dst, src):
        """Move into an existing register (for loop-carried variables)."""
        self.emit(Opcode.MOV, dst=dst, operands=[_as_operand(src)])
        return dst

    def binop(self, opcode, a, b, hint="t"):
        return self._emit_value(opcode, [a, b], hint)

    def add(self, a, b, hint="t"):
        return self.binop(Opcode.ADD, a, b, hint)

    def sub(self, a, b, hint="t"):
        return self.binop(Opcode.SUB, a, b, hint)

    def mul(self, a, b, hint="t"):
        return self.binop(Opcode.MUL, a, b, hint)

    def div(self, a, b, hint="t"):
        return self.binop(Opcode.DIV, a, b, hint)

    def rem(self, a, b, hint="t"):
        return self.binop(Opcode.REM, a, b, hint)

    def fma(self, a, b, c, hint="t"):
        return self._emit_value(Opcode.FMA, [a, b, c], hint)

    def unop(self, opcode, a, hint="t"):
        return self._emit_value(opcode, [a], hint)

    def cmp(self, opcode, a, b, hint="p"):
        return self.binop(opcode, a, b, hint)

    def lt(self, a, b):
        return self.cmp(Opcode.CMPLT, a, b)

    def le(self, a, b):
        return self.cmp(Opcode.CMPLE, a, b)

    def gt(self, a, b):
        return self.cmp(Opcode.CMPGT, a, b)

    def ge(self, a, b):
        return self.cmp(Opcode.CMPGE, a, b)

    def eq(self, a, b):
        return self.cmp(Opcode.CMPEQ, a, b)

    def ne(self, a, b):
        return self.cmp(Opcode.CMPNE, a, b)

    def sel(self, pred, a, b, hint="s"):
        return self._emit_value(Opcode.SEL, [pred, a, b], hint)

    def tid(self, hint="tid"):
        return self._emit_value(Opcode.TID, [], hint)

    def lane(self, hint="lane"):
        return self._emit_value(Opcode.LANE, [], hint)

    def warpid(self, hint="wid"):
        return self._emit_value(Opcode.WARPID, [], hint)

    def rand(self, hint="r"):
        return self._emit_value(Opcode.RAND, [], hint)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, addr, hint="v"):
        return self._emit_value(Opcode.LD, [addr], hint)

    def store(self, addr, value):
        self.emit(
            Opcode.ST, operands=[_as_operand(addr), _as_operand(value)]
        )

    def atom_add(self, addr, value, hint="old"):
        return self._emit_value(Opcode.ATOMADD, [addr, value], hint)

    # Per-CTA shared memory (grid launches only)
    def shared_load(self, addr, hint="sv"):
        return self._emit_value(Opcode.SHLD, [addr], hint)

    def shared_store(self, addr, value):
        self.emit(
            Opcode.SHST, operands=[_as_operand(addr), _as_operand(value)]
        )

    def shared_atom_add(self, addr, value, hint="sold"):
        return self._emit_value(Opcode.SHATOM, [addr, value], hint)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def bra(self, target):
        name = target.name if hasattr(target, "name") else target
        self.emit(Opcode.BRA, operands=[BlockRef(name)])

    def cbr(self, pred, true_target, false_target):
        t = true_target.name if hasattr(true_target, "name") else true_target
        f = false_target.name if hasattr(false_target, "name") else false_target
        self.emit(
            Opcode.CBR,
            operands=[_as_operand(pred), BlockRef(t), BlockRef(f)],
        )

    def call(self, func, args=(), hint="ret", void=False):
        name = func.name if hasattr(func, "name") else func
        dst = None if void else self.function.new_reg(hint)
        operands = [FuncRef(name)] + [_as_operand(a) for a in args]
        self.emit(Opcode.CALL, dst=dst, operands=operands)
        return dst

    def ret(self, value=None):
        operands = [] if value is None else [_as_operand(value)]
        self.emit(Opcode.RET, operands=operands)

    def exit(self):
        self.emit(Opcode.EXIT)

    # ------------------------------------------------------------------
    # Barriers and markers
    # ------------------------------------------------------------------
    def bssy(self, barrier, **attrs):
        self.emit(Opcode.BSSY, operands=[_as_barrier(barrier)], **attrs)

    def bsync(self, barrier, **attrs):
        self.emit(Opcode.BSYNC, operands=[_as_barrier(barrier)], **attrs)

    def bsync_soft(self, barrier, threshold, **attrs):
        self.emit(
            Opcode.BSYNCSOFT,
            operands=[_as_barrier(barrier), _as_operand(threshold)],
            **attrs,
        )

    def bbreak(self, barrier, **attrs):
        self.emit(Opcode.BBREAK, operands=[_as_barrier(barrier)], **attrs)

    def bmov(self, dst_reg, barrier, **attrs):
        self.emit(Opcode.BMOV, dst=dst_reg, operands=[_as_barrier(barrier)], **attrs)
        return dst_reg

    def barcnt(self, barrier, hint="cnt", **attrs):
        dst = self.function.new_reg(hint)
        self.emit(Opcode.BARCNT, dst=dst, operands=[_as_barrier(barrier)], **attrs)
        return dst

    def predict(self, label):
        """Emit a ``Predict(<label>)`` directive (Section 4.1)."""
        self.emit(Opcode.PREDICT, operands=[], label=label)

    def predict_call(self, func_name):
        """Interprocedural ``Predict(@func)`` directive (Section 4.4)."""
        self.emit(Opcode.PREDICT, operands=[FuncRef(func_name)])

    def warpsync(self):
        self.emit(Opcode.WARPSYNC)

    def ctasync(self):
        self.emit(Opcode.CTASYNC)

    def nop(self):
        self.emit(Opcode.NOP)

    def delay(self, cycles):
        self.emit(Opcode.DELAY, operands=[Imm(int(cycles))])
