"""OptiX-style ray traversal workload (Table 2).

"NVIDIA's ray tracing engine ... an application space known for
divergence" (Section 5.4). BVH traversal alternates cheap internal-node
steps with expensive leaf intersections; which rays hit leaves on a given
step is thread-varying, so leaf tests execute serially under PDOM sync.
The Iteration Delay point is the leaf-intersection block — the same vote
pattern performance-conscious ray tracer authors hand-roll (Section 7).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class OptixTrace(Workload):
    name = "optix"
    description = (
        "OptiX-style BVH traversal; divergent leaf-intersection branch "
        "inside the traversal loop (Iteration Delay)"
    )
    pattern = "iteration-delay"
    paper_note = (
        "Several Figure 10 auto-detected candidates come from OptiX traces."
    )
    kernel_name = "optix_trace"
    sr_threshold = 14
    defaults = {
        "steps": 40,
        "leaf_prob": 0.25,
        "intersect_cost": 60,
        "traverse_cost": 3,
    }

    def source(self):
        p = self.params
        intersect = repeat_lines("t_hit = fma(t_hit, 0.991, 0.004);", p["intersect_cost"])
        traverse = repeat_lines("node = node * 2 + 1;", p["traverse_cost"])
        return f"""
kernel optix_trace(n_steps, framebuffer) {{
    let ray = tid();
    let node = 1;
    let t_hit = 1000000.0;
    predict L1;
    for i in 0..n_steps {{
        let u = hash01(ray * 881.0 + i * 29.0);
        if (u < {p['leaf_prob']}) {{
            // Proposed reconvergence point: intersect leaf primitives
            // (the expensive common code across iterations).
            label L1: t_hit = t_hit * 0.9999;
{intersect}
            node = 1;
        }} else {{
            // Traverse an internal node (cheap).
{traverse}
            node = node % 4096;
        }}
    }}
    store(framebuffer + ray, t_hit);
}}
"""

    def setup(self, memory):
        framebuffer = memory.alloc(self.n_threads, name="framebuffer")
        return (self.params["steps"], framebuffer)
