"""Baseline post-dominator reconvergence insertion (Section 2 / Figure 1a).

Models what production GPU compilers do: for every divergent conditional
branch, join a convergence barrier at the branch and wait at the branch's
immediate reconvergence point — the nearest common post-dominator of its
successors. Threads therefore reconverge "at the earliest possible point
where all threads are guaranteed to arrive".

This pass is both the baseline we measure Speculative Reconvergence
against and a prerequisite of it (SR deconflicts against these barriers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg_utils import CFGView
from repro.analysis.divergence import DivergenceAnalysis
from repro.analysis.dominators import compute_post_dominators
from repro.core.primitives import BarrierNamer, join_barrier, wait_barrier
from repro.ir.instructions import Opcode

ORIGIN = "pdom"


@dataclass
class PdomSyncReport:
    """What the pass inserted: branch block -> (barrier, reconvergence block)."""

    barriers: dict = field(default_factory=dict)
    skipped_branches: list = field(default_factory=list)

    def barrier_for_branch(self, block_name):
        return self.barriers.get(block_name, (None, None))[0]

    def describe(self):
        parts = [
            f"{branch}->{barrier}@{join}"
            for branch, (barrier, join) in sorted(self.barriers.items())
        ]
        body = ", ".join(parts) if parts else "no divergent branches"
        if self.skipped_branches:
            body += f" (skipped {len(self.skipped_branches)})"
        return body


def insert_pdom_sync(
    function,
    namer=None,
    divergence=None,
    assume_all_divergent=False,
    callee_summaries=None,
):
    """Insert PDOM reconvergence barriers into ``function`` (in place).

    Args:
        namer: barrier name allocator shared across passes.
        divergence: precomputed :class:`DivergenceAnalysis` (else computed).
        assume_all_divergent: barrier every conditional branch regardless of
            the divergence analysis (a stress mode used in tests).
    Returns a :class:`PdomSyncReport`.
    """
    namer = namer or BarrierNamer()
    report = PdomSyncReport()
    if divergence is None and not assume_all_divergent:
        divergence = DivergenceAnalysis(
            function, callee_summaries=callee_summaries
        )
    view = CFGView.of_function(function)
    pdom = compute_post_dominators(view)

    for block in list(function.blocks):
        term = block.terminator
        if term is None or term.opcode is not Opcode.CBR:
            continue
        if not assume_all_divergent and not divergence.is_divergent_branch(
            block.name
        ):
            report.skipped_branches.append((block.name, "uniform"))
            continue
        join_point = pdom.branch_reconvergence_point(block.name, view)
        if join_point is None:
            # Paths reconverge only at the function exit; hardware drains
            # exiting lanes from every barrier, so no explicit sync helps.
            report.skipped_branches.append((block.name, "no-post-dominator"))
            continue
        if join_point in (name for name in view.succs[block.name]):
            # Both successors *are* the join point or it is immediate on one
            # side: a branch like `cbr p, ^next, ^next` has no divergence.
            if view.succs[block.name][0] == view.succs[block.name][1]:
                report.skipped_branches.append((block.name, "single-target"))
                continue
        barrier = namer.fresh()
        block.insert_before_terminator(join_barrier(barrier, ORIGIN))
        function.block(join_point).prepend(wait_barrier(barrier, ORIGIN))
        report.barriers[block.name] = (barrier, join_point)
    return report
