"""Parallel sweep runner: fan independent experiment configs over workers.

Every figure regeneration is a bag of independent experiments — one
``compare_workload`` per Table 2 row, one compile-and-launch per threshold
sweep point — that share nothing but the (deterministic) seed. This module
farms such a bag over a ``multiprocessing`` pool and merges results in
submission order, so a parallel sweep is *bit-identical* to the serial
one: ``pool.map`` preserves ordering, each worker runs with its own
process-private caches, and all randomness is derived from the explicit
seed, never from worker identity or scheduling.

The pool is **persistent**: the first parallel ``run_tasks`` call forks
it, later calls reuse it, so a session of many small sweeps (threshold
scans especially) pays pool spin-up and per-process cache warming once
instead of per sweep. The pool is keyed by the worker count and a
fingerprint of every knob that shapes worker behaviour — the ``REPRO_*``
environment and the in-process engine toggles (fastpath, segments, warp
batching, compile cache) — and is transparently torn down and reforked
when any of them changes, since forked workers snapshot that state at
creation. :func:`shutdown_pool` retires it explicitly (also registered
``atexit``), and a worker exception terminates the pool before
propagating so no half-poisoned workers outlive the error.

Tasks are ``(fn, args, kwargs)`` triples with ``fn`` a module-level
function (workers import it by reference under the fork start method, and
by qualified name under spawn). ``jobs<=1``, a single task, or an
unavailable ``multiprocessing`` all degrade to a plain serial loop — the
``--jobs`` flag can therefore be wired through unconditionally.

:func:`run_tasks_observed` is the telemetry-carrying variant: each worker
snapshots the process-global engine counters around its task (and, with
``events=True``, collects every simulator event through the ambient
sink) and ships the delta back alongside the result. The parent merges
worker counter deltas into its own :data:`~repro.obs.counters.ENGINE_COUNTERS`,
so the registry reflects all work done on a sweep's behalf whether it ran
serially or on the pool — ``--jobs`` runs are no longer observability
black holes. The per-worker reports feed
:func:`repro.obs.chrome_trace.merged_worker_trace` (one Chrome process
per worker, so colliding warp tids stay distinguishable) and the
``tools.stats`` aggregate table.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os

from repro.obs import counters as _counters
from repro.obs.counters import ENGINE_COUNTERS

__all__ = [
    "resolve_jobs",
    "run_tasks",
    "run_tasks_observed",
    "shutdown_pool",
    "task",
]


def resolve_jobs(jobs=None):
    """Normalize a ``--jobs`` value: None/0 consult ``REPRO_JOBS``, then 1.

    An explicit negative value means "one worker per CPU".
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = int(env)
    jobs = int(jobs)
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, jobs)


def task(fn, *args, **kwargs):
    """Package one unit of work for :func:`run_tasks`."""
    return (fn, args, kwargs)


def _call(packed):
    fn, args, kwargs = packed
    return fn(*args, **kwargs)


#: The live pool and the (jobs, fingerprint) key it was forked under.
_POOL = None
_POOL_KEY = None


def _knob_fingerprint():
    """Everything a forked worker snapshots that a later sweep may have
    changed: REPRO_* environment variables and the in-process engine
    toggles (which ``set_fastpath``-style helpers flip without touching
    the environment)."""
    env = tuple(sorted(
        (key, value)
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
    ))
    from repro.core.program_cache import CACHE_ENABLED
    from repro.simt.batch import WARP_BATCH_ENABLED
    from repro.simt.fastpath import FASTPATH_ENABLED
    from repro.simt.segments import SEGMENTS_ENABLED

    return (
        env,
        FASTPATH_ENABLED,
        SEGMENTS_ENABLED,
        WARP_BATCH_ENABLED,
        CACHE_ENABLED,
    )


def shutdown_pool():
    """Retire the persistent pool (no-op when none is alive)."""
    global _POOL, _POOL_KEY
    pool = _POOL
    _POOL = None
    _POOL_KEY = None
    if pool is not None:
        ENGINE_COUNTERS.pool_teardowns += 1
        pool.terminate()
        pool.join()


atexit.register(shutdown_pool)


def _acquire_pool(jobs):
    """The persistent pool for ``jobs`` workers under the current knobs,
    reforking if either changed since the last call."""
    global _POOL, _POOL_KEY
    key = (jobs, _knob_fingerprint())
    if _POOL is not None and _POOL_KEY == key:
        ENGINE_COUNTERS.pool_reuses += 1
        return _POOL
    shutdown_pool()
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context("spawn")
    _POOL = context.Pool(processes=jobs)
    _POOL_KEY = key
    return _POOL


def run_tasks(tasks, jobs=None):
    """Run ``(fn, args, kwargs)`` triples; results in submission order.

    With ``jobs`` (resolved per :func:`resolve_jobs`) greater than one and
    more than one task, the tasks run on the persistent process pool;
    otherwise serially in-process. Worker exceptions propagate to the
    caller either way (and retire the pool first).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*args, **kwargs) for fn, args, kwargs in tasks]
    pool = _acquire_pool(jobs)
    ENGINE_COUNTERS.pool_tasks += len(tasks)
    try:
        return pool.map(_call, tasks)
    except Exception:
        # The failed map may leave workers mid-task; don't hand them the
        # next sweep.
        shutdown_pool()
        raise


def _call_observed(packed):
    """Worker-side wrapper: run the task, return ``(result, report)``.

    The report carries the worker's engine-counter delta over the task
    (its process-global registry accumulates across tasks; the delta is
    this task's share) and, when requested, every simulator event the
    task's launches emitted — captured through the ambient sink so the
    task itself needs no observability plumbing.
    """
    fn, args, kwargs, events = packed
    from repro.obs.sinks import ListSink, set_ambient_sink

    before = _counters.snapshot()
    sink = previous = None
    if events:
        sink = ListSink()
        previous = set_ambient_sink(sink)
    try:
        result = fn(*args, **kwargs)
    finally:
        if sink is not None:
            set_ambient_sink(previous)
    report = {
        "pid": os.getpid(),
        "counters": _counters.delta(_counters.snapshot(), before),
        "events": sink.events if sink is not None else [],
    }
    return result, report


def run_tasks_observed(tasks, jobs=None, events=False):
    """Like :func:`run_tasks`, returning ``(results, worker_reports)``.

    ``worker_reports`` is one dict per task, in submission order:
    ``{"pid": worker os pid, "counters": engine-counter delta,
    "events": [simulator events]}`` (``events`` empty unless
    ``events=True`` — event capture flips launches into observing mode,
    which disables segment fusion and warp batching, so only ask for it
    when you want the timeline rather than representative counters).

    When the tasks ran on the pool, each worker's counter delta is merged
    into the parent's registry, so :data:`ENGINE_COUNTERS` accounts for
    the whole sweep either way; cross-process results remain bit-identical
    to the serial run (the wrapper only reads counters around the task).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    packed = [(fn, args, kwargs, events) for fn, args, kwargs in tasks]
    if jobs <= 1 or len(tasks) <= 1:
        out = [_call_observed(item) for item in packed]
        return [r for r, _ in out], [rep for _, rep in out]
    pool = _acquire_pool(jobs)
    ENGINE_COUNTERS.pool_tasks += len(tasks)
    try:
        out = pool.map(_call_observed, packed)
    except Exception:
        shutdown_pool()
        raise
    reports = [rep for _, rep in out]
    for report in reports:
        ENGINE_COUNTERS.merge(report["counters"])
    return [r for r, _ in out], reports
