"""The GPU machine: kernel launches, warp interleaving, deadlock detection.

Warps execute independently (their cycle counters advance in parallel);
the machine interleaves them round-robin one issue at a time so that
cross-warp atomics are deterministic. A launch returns a
:class:`LaunchResult` with the profiler, final memory, and per-thread
traces used by correctness tests.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from repro.errors import DeadlockError, LaunchError, SimulationError
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.metrics import LaunchMetrics
from repro.obs.recorder import attach_post_mortem, make_recorder
from repro.obs.sinks import ambient_sink
from repro.simt.costs import DEFAULT_COST_MODEL
from repro.simt.cta import CTAContext
from repro.simt.executor import Executor
from repro.simt.memory import GlobalMemory
from repro.simt.profiler import Profiler
from repro.simt.scheduler import make_scheduler
from repro.simt.warp import WARP_SIZE, Thread, Warp

#: Issue-slot budget shared by every execution engine (GPU, stack,
#: single-thread reference) so runaway-loop detection behaves the same
#: no matter which path runs a kernel.
DEFAULT_MAX_ISSUES = 20_000_000

_by_lane = operator.attrgetter("lane")


def _fold_launch_counters(counters):
    """Fold one launch's profiler-derived counters into the process-global
    registry (launch end only — never on the per-issue path)."""
    ENGINE_COUNTERS.segments_fused_instrs += counters["segments.fused_instrs"]
    ENGINE_COUNTERS.segments_fallback_instrs += (
        counters["segments.fallback_instrs"]
    )
    ENGINE_COUNTERS.segments_fused_segments += (
        counters["segments.fused_segments"]
    )
    ENGINE_COUNTERS.batch_epochs += counters["batch.epochs"]
    ENGINE_COUNTERS.batch_rollbacks += counters["batch.rollbacks"]
    ENGINE_COUNTERS.batch_replayed_slots += counters["batch.replayed_slots"]
    if counters["batch.peak_footprint"] > ENGINE_COUNTERS.batch_peak_footprint:
        ENGINE_COUNTERS.batch_peak_footprint = counters["batch.peak_footprint"]
    ENGINE_COUNTERS.spec_rounds += counters["spec.rounds"]
    ENGINE_COUNTERS.spec_committed += counters["spec.committed"]
    ENGINE_COUNTERS.spec_rolled_back += counters["spec.rolled_back"]
    ENGINE_COUNTERS.spec_retries += counters["spec.retries"]
    ENGINE_COUNTERS.spec_backoffs += counters["spec.backoffs"]
    ENGINE_COUNTERS.spec_replayed_slots += counters["spec.replayed_slots"]
    if counters["spec.peak_footprint"] > ENGINE_COUNTERS.spec_peak_footprint:
        ENGINE_COUNTERS.spec_peak_footprint = counters["spec.peak_footprint"]
    ENGINE_COUNTERS.spec_nonforced_tie += counters["spec.nonforced_tie"]
    ENGINE_COUNTERS.spec_nonforced_multi_group += (
        counters["spec.nonforced_multi_group"]
    )
    ENGINE_COUNTERS.spec_nonforced_observed += (
        counters["spec.nonforced_observed"]
    )
    ENGINE_COUNTERS.soa_vector_chunks += counters["soa.vector_chunks"]
    ENGINE_COUNTERS.soa_fallback_chunks += counters["soa.fallback_chunks"]
    ENGINE_COUNTERS.jit_executed_segments += counters["jit.executed_segments"]
    ENGINE_COUNTERS.jit_tierups += counters["jit.tierups"]
    ENGINE_COUNTERS.jit_deopts += counters["jit.deopts"]


@dataclass
class LaunchResult:
    """Everything observable about one kernel launch."""

    kernel: str
    n_threads: int
    profiler: Profiler
    memory: GlobalMemory
    threads: list
    #: per-launch engine-layer counters (Profiler.engine_counters());
    #: telemetry only, never part of the simulated result
    counters: dict = field(default=None, repr=False)
    #: the launch's FlightRecorder (None when recording is off)
    flight_recorder: object = field(default=None, repr=False)
    #: the CTA context the launch ran under (grid identity, shared memory)
    cta: object = field(default=None, repr=False)

    @property
    def simt_efficiency(self):
        return self.profiler.simt_efficiency

    @property
    def cycles(self):
        return self.profiler.total_cycles

    def store_traces(self):
        """Per-thread ordered (addr, value) store lists, keyed by tid."""
        return {t.tid: list(t.store_trace) for t in self.threads}

    def retired_per_thread(self):
        return {t.tid: t.retired for t in self.threads}

    @property
    def metrics(self):
        """Stall-reason metrics (LaunchMetrics), or None when disabled."""
        return self.profiler.metrics


class GPUMachine:
    """Executes kernels of a module under a scheduler and cost model."""

    def __init__(
        self,
        module,
        cost_model=None,
        scheduler="convergence",
        seed=2020,
        max_issues=DEFAULT_MAX_ISSUES,
        trace=False,
        sink=None,
        metrics=False,
        fastpath=None,
        segments=None,
        warp_batch=None,
        soa=None,
        jit=None,
        spec=None,
        flight_recorder=None,
    ):
        self.module = module
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.scheduler_name = scheduler
        self.seed = seed
        self.max_issues = max_issues
        # None defers to the global repro.simt.fastpath default.
        self.fastpath = fastpath
        # None defers to the global repro.simt.segments default.
        self.segments = segments
        # None defers to the global repro.simt.batch default.
        self.warp_batch = warp_batch
        # None defers to the global repro.simt.soa default (REPRO_SOA).
        self.soa = soa
        # None defers to the global repro.simt.jit default (REPRO_JIT).
        self.jit = jit
        # None defers to the global repro.simt.spec default (REPRO_SPEC).
        self.spec = spec
        # Observability, all off by default (the fast path stays
        # allocation-free): ``trace`` records cycle-stamped IssueEvents for
        # timeline rendering, ``sink`` streams every event kind to a
        # repro.obs sink, ``metrics`` enables stall-reason attribution.
        self.trace = trace
        self.sink = sink
        self.metrics = metrics
        # None defers to the global repro.obs.recorder level; True/False
        # and the level strings ("on"/"off"/"verbose") force it.
        self.flight_recorder = flight_recorder
        #: the active launch's recorder (the batcher records into it)
        self._recorder = None

    def launch(self, kernel_name, n_threads, args=(), memory=None, cta=None):
        kernel = self.module.function(kernel_name)
        if not kernel.is_kernel:
            raise LaunchError(f"@{kernel_name} is not a kernel")
        if n_threads <= 0:
            raise LaunchError(f"launch needs at least one thread, got {n_threads}")
        if len(args) != len(kernel.params):
            raise LaunchError(
                f"@{kernel_name} takes {len(kernel.params)} arguments, "
                f"got {len(args)}"
            )
        memory = memory if memory is not None else GlobalMemory()
        # One launch = one CTA. The default context is the degenerate
        # single-CTA grid (cta_id 0, zero tid/warp bases), which makes a
        # flat launch bit-identical to the pre-grid engine; GridLaunch
        # passes one context per CTA with global bases.
        if cta is None:
            cta = CTAContext(cta_dim=n_threads)
        elif cta.cta_dim is None:
            cta.cta_dim = n_threads
        profiler = Profiler(trace=self.trace)
        metrics = LaunchMetrics() if self.metrics else None
        profiler.metrics = metrics
        # Machines built without an explicit sink pick up the ambient one
        # (the parallel harness installs one around observed worker tasks
        # so --jobs sweeps stream events back to the parent).
        sink = self.sink if self.sink is not None else ambient_sink()
        executor = Executor(
            self.module, memory, self.cost_model, profiler,
            sink=sink, metrics=metrics, fastpath=self.fastpath,
            segments=self.segments, soa=self.soa, jit=self.jit, cta=cta,
        )
        scheduler = make_scheduler(self.scheduler_name)

        # Grid launches offset tids and warp ids by the CTA's global bases,
        # so RNG streams and warp identity match the equivalent flat launch
        # of the whole grid (both are zero for a flat launch).
        tid_base = cta.tid_base
        warp_base = cta.warp_base
        warps = []
        all_threads = []
        for base in range(0, n_threads, WARP_SIZE):
            warp_id = warp_base + base // WARP_SIZE
            threads = [
                Thread(
                    tid_base + tid, tid - base, warp_id, kernel, args,
                    self.seed,
                )
                for tid in range(base, min(base + WARP_SIZE, n_threads))
            ]
            warps.append(Warp(warp_id, threads))
            all_threads.extend(threads)
        cta.warps = warps

        recorder = make_recorder(kernel_name, n_threads, self.flight_recorder)
        self._recorder = recorder
        executor.recorder = recorder
        if recorder is not None:
            recorder.record(
                "launch", {"kernel": kernel_name, "n_threads": n_threads,
                           "warps": len(warps)}
            )

        batcher = None
        spec = None
        if len(warps) > 1:
            from repro.simt.batch import make_batcher
            from repro.simt.spec import make_spec

            batcher = make_batcher(
                self, executor, scheduler, kernel_name, args, n_threads
            )
            spec = make_spec(
                self, executor, scheduler, kernel_name, args, n_threads
            )

        issues = 0
        live_warps = list(warps)
        try:
            while live_warps:
                if len(live_warps) == 1 and executor.segment_at is not None:
                    # Exactly one live warp (single-warp launch, or the
                    # tail of a multi-warp one): nothing can interleave
                    # with it, so segment fusion cannot perturb cross-warp
                    # memory order.
                    self._run_exclusive(
                        live_warps[0], executor, scheduler, issues,
                        kernel_name
                    )
                    break
                if batcher is not None:
                    # Lockstep epoch: every live warp advances the same
                    # number of fused slots, with memory disjointness
                    # proven statically or enforced by the optimistic
                    # write-set guard. Falls through to one ordinary
                    # per-slot round when it cannot engage (non-forced
                    # pick, no segment, drain needed, ...).
                    advanced = batcher.try_epoch(live_warps, issues)
                    if advanced is not None:
                        # Segment ops cannot exit or park, so the live set
                        # is unchanged.
                        issues = advanced
                        continue
                if spec is not None:
                    # The forced-pick precondition failed (or batching is
                    # off): try a speculative round — snapshot the pick
                    # order, execute optimistically under the footprint
                    # guard, commit in serial-schedule order or roll back
                    # exactly. Fusable ops cannot exit or park, so the
                    # live set is unchanged here too.
                    advanced = spec.try_round(live_warps, issues)
                    if advanced is not None:
                        issues = advanced
                        continue
                progressed = []
                for warp in live_warps:
                    if self._step(warp, executor, scheduler):
                        issues += 1
                        if issues > self.max_issues:
                            raise LaunchError(
                                f"@{kernel_name} exceeded {self.max_issues} "
                                "issue slots; likely an infinite loop"
                            )
                    if not warp.done:
                        progressed.append(warp)
                live_warps = progressed
        except SimulationError as exc:
            self._abort_launch(exc, recorder, profiler, sink)
            raise
        finally:
            self._recorder = None

        counters = profiler.engine_counters()
        _fold_launch_counters(counters)
        ENGINE_COUNTERS.launch_count += 1
        if recorder is not None:
            recorder.record(
                "launch-end",
                {"issued": profiler.issued, "cycles": profiler.total_cycles},
            )
        return LaunchResult(
            kernel=kernel_name,
            n_threads=n_threads,
            profiler=profiler,
            memory=memory,
            threads=all_threads,
            counters=counters,
            flight_recorder=recorder,
            cta=cta,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _abort_launch(exc, recorder, profiler, sink):
        """Death rites for a launch that raised mid-kernel: account the
        failure, attach the flight-recorder post-mortem to the error, and
        finalize the sink so a file-backed trace keeps the events leading
        up to the failure instead of silently losing them."""
        ENGINE_COUNTERS.launch_errors += 1
        if recorder is not None:
            recorder.record(
                "error",
                {"type": type(exc).__name__, "issued": profiler.issued},
            )
        from repro.simt.jit import jit_post_mortem

        # The generated source of the last-executed JIT segment rides on
        # the report, but only when this launch actually ran JIT code.
        extra = jit_post_mortem() if profiler.jit_segments else None
        attach_post_mortem(exc, recorder, extra=extra)
        if sink is not None:
            try:
                sink.close()
            except Exception:  # pragma: no cover - must not mask the error
                pass

    # ------------------------------------------------------------------
    def _run_exclusive(self, warp, executor, scheduler, issues, kernel_name):
        """Run the last live warp to completion with segment fusion.

        Fusion fires only when three proofs hold at once: the scheduler's
        pick is *forced* for the whole run (``forced_pick``), a fusable
        segment starts at that PC (``executor.segment_at``), and no other
        group sits inside the segment (``Segment.conflicts``). Everything
        else falls through to the ordinary per-instruction ``_step`` —
        including draining, deadlock detection, and warp completion — so
        the fused schedule is pick-for-pick identical to the slow one.
        """
        segment_at = executor.segment_at
        program_order = executor.program_order
        profiler = executor.profiler
        max_issues = self.max_issues
        recorder = self._recorder
        verbose = recorder is not None and recorder.verbose
        while not warp.done:
            groups = warp.groups_cache
            if groups is None:
                groups = warp.groups()
            if groups:
                pc = scheduler.forced_pick(groups, program_order)
                if pc is not None:
                    segment = segment_at(pc)
                    if segment is not None and (
                        len(groups) == 1 or not segment.conflicts(groups)
                    ):
                        group = groups[pc]
                        cycles = segment.execute(executor, warp, group)
                        n = segment.n
                        scheduler.consume(n)
                        for thread in group:
                            thread.retired += n
                        profiler.record_segment(
                            warp.warp_id, pc, segment, len(group), cycles
                        )
                        if verbose:
                            recorder.record(
                                "segment",
                                {"warp": warp.warp_id, "pc": list(pc),
                                 "slots": n},
                            )
                        warp.cycles += cycles
                        issues += n
                        if issues > max_issues:
                            raise LaunchError(
                                f"@{kernel_name} exceeded {max_issues} issue "
                                "slots; likely an infinite loop"
                            )
                        # Segment ops cannot park, release, or split, so
                        # the other groups are untouched: patch the issued
                        # bucket over to end_pc exactly as _step's uniform
                        # carry-over would have, one instruction at a time.
                        del groups[pc]
                        end_pc = segment.end_pc
                        resident = groups.get(end_pc)
                        if resident is None:
                            groups[end_pc] = group
                        else:
                            resident.extend(group)
                            resident.sort(key=_by_lane)
                        warp.groups_cache = groups
                        continue
            # No fusable forced pick here: hand the grouping to _step (an
            # empty dict still routes through its drain/done/deadlock
            # logic) and issue one instruction the ordinary way.
            warp.groups_cache = groups
            if self._step(warp, executor, scheduler):
                issues += 1
                if issues > max_issues:
                    raise LaunchError(
                        f"@{kernel_name} exceeded {max_issues} issue "
                        "slots; likely an infinite loop"
                    )
        return issues

    # ------------------------------------------------------------------
    def _step(self, warp, executor, scheduler):
        """Issue one instruction for ``warp``; returns True if issued."""
        on_release = None
        if executor.observing:
            on_release = (
                lambda barrier, lanes: executor.observe_release(
                    warp, barrier, lanes
                )
            )
        # After a uniform op only the issued bucket moved, so the previous
        # grouping was patched in place — reuse it instead of regrouping.
        groups = warp.groups_cache
        warp.groups_cache = None
        if groups is None:
            groups = warp.groups()
        if not groups:
            warp.drain_releasable(on_release)
            groups = warp.groups()
        if not groups:
            if not warp.live_threads():
                warp.done = True
                return False
            cta = executor.cta
            if cta is not None and cta.has_ctasync_waiters(warp):
                # CTA-wide barrier: arrival happens in the ctasync handler,
                # but the *exit* of a thread in another warp can shrink the
                # membership — re-check release here. When the barrier
                # cannot open yet, stall (no issue) as long as a sibling
                # warp can still make progress toward it.
                if cta.maybe_release():
                    return False
                if cta.others_can_progress(warp):
                    return False
            waiting = [
                (t.lane, t.waiting_on) for t in warp.threads if not t.is_exited
            ]
            raise DeadlockError(
                f"warp {warp.warp_id}: no runnable threads and no releasable "
                f"barrier (conflicting barriers? see Section 4.3). "
                f"Waiting lanes: {waiting}",
                warp_id=warp.warp_id,
                waiting=waiting,
            )
        profiler = executor.profiler
        if executor.segment_at is None:
            # No segment engine this launch (observers attached, or
            # fastpath/segments off): every slot is out of reach for the
            # forced-pick fast lanes, whatever the scheduler says.
            profiler.nonforced_observed += 1
        elif len(groups) > 1 and (
            scheduler.forced_pick(groups, executor.program_order) is None
        ):
            if scheduler.name == "convergence":
                profiler.nonforced_tie += 1
            else:
                profiler.nonforced_multi_group += 1
        pc = scheduler.pick(groups, executor.program_order)
        group = groups[pc]
        executor.execute(warp, pc, group)
        released = warp.drain_releasable(on_release)
        if released == 0 and executor.issued_uniform:
            # A uniform op moved every thread of ``group`` to one new PC and
            # could not park, exit, or release anything, so the other groups
            # are exactly as they were: patch the dict instead of rescanning
            # the warp. (Schedulers order by injective PC keys, so dict
            # insertion order cannot influence the pick.)
            del groups[pc]
            frame = group[0].frames[-1]
            new_pc = (frame.fname, frame.block_name, frame.index)
            resident = groups.get(new_pc)
            if resident is None:
                groups[new_pc] = group
            else:
                # Landed on an already-populated PC: buckets stay in lane
                # order, as Warp.groups() would have produced.
                resident.extend(group)
                resident.sort(key=_by_lane)
            warp.groups_cache = groups
        return True
