"""Corpus generator and Section 5.4 funnel tests (scaled down)."""

import pytest

from repro.ir import verify_module
from repro.workloads.corpus import (
    CATEGORY_COUNTS,
    STRONG_DETECTABLE,
    generate_corpus,
    run_funnel,
)

SMALL = {"uniform": 6, "mild": 4, "disjoint": 4, "detectable": 16}


class TestGenerator:
    def test_default_counts_match_paper(self):
        assert sum(CATEGORY_COUNTS.values()) == 520
        assert CATEGORY_COUNTS["disjoint"] + CATEGORY_COUNTS["detectable"] == 75
        assert CATEGORY_COUNTS["detectable"] == 16
        assert STRONG_DETECTABLE == 5

    def test_generation_deterministic(self):
        a = generate_corpus(counts=SMALL, seed=1)
        b = generate_corpus(counts=SMALL, seed=1)
        assert [x.source for x in a] == [y.source for y in b]

    def test_seed_changes_sources(self):
        a = generate_corpus(counts=SMALL, seed=1)
        b = generate_corpus(counts=SMALL, seed=2)
        assert [x.source for x in a] != [y.source for y in b]

    def test_strong_flag_only_on_detectable(self):
        apps = generate_corpus(counts=SMALL)
        strong = [a for a in apps if a.strong]
        assert len(strong) == STRONG_DETECTABLE
        assert all(a.category == "detectable" for a in strong)

    @pytest.mark.parametrize("category", sorted(SMALL))
    def test_apps_compile_and_verify(self, category):
        apps = [a for a in generate_corpus(counts=SMALL) if a.category == category]
        for app in apps[:3]:
            assert verify_module(app.module())


class TestFunnel:
    @pytest.fixture(scope="class")
    def funnel(self):
        return run_funnel(generate_corpus(counts=SMALL))

    def test_uniform_and_mild_stay_efficient(self, funnel):
        for row in funnel.rows:
            if row["category"] in ("uniform", "mild"):
                assert row["baseline_eff"] >= 0.8, row

    def test_divergent_categories_below_cutoff(self, funnel):
        for row in funnel.rows:
            if row["category"] in ("disjoint", "detectable"):
                assert row["baseline_eff"] < 0.8, row

    def test_detection_hits_exactly_detectable(self, funnel):
        detected = {r["name"] for r in funnel.rows if r["detected"]}
        expected = {
            r["name"] for r in funnel.rows if r["category"] == "detectable"
        }
        assert detected == expected

    def test_strong_apps_significant(self, funnel):
        strong = [r for r in funnel.rows if r["strong"]]
        assert all(r["speedup"] and r["speedup"] >= 1.10 for r in strong)

    def test_weak_apps_not_significant(self, funnel):
        weak = [
            r
            for r in funnel.rows
            if r["category"] == "detectable" and not r["strong"]
        ]
        assert all(r["speedup"] < 1.10 for r in weak)

    def test_funnel_counts(self, funnel):
        assert funnel.total == sum(SMALL.values())
        assert funnel.low_efficiency == SMALL["disjoint"] + SMALL["detectable"]
        assert funnel.detected == SMALL["detectable"]
        assert funnel.significant == STRONG_DETECTABLE

    def test_describe(self, funnel):
        assert "->" in funnel.describe()
