"""Experiment harness: regenerates every table and figure of Section 5."""

from repro.harness.experiment import (
    ComparisonRow,
    SweepPoint,
    compare_all,
    compare_workload,
    threshold_sweep,
)
from repro.harness.figures import (
    ALL_FIGURES,
    FigureResult,
    corpus_funnel,
    deconfliction_ablation,
    figure7,
    figure8,
    figure9,
    figure10,
    funccall_microbenchmark,
    table2,
)
from repro.harness.timeline import (
    assign_symbols,
    convergence_series,
    render_timeline,
)
from repro.harness.report import (
    efficiency_chart,
    format_bar,
    format_table,
    markdown_table,
    sm_occupancy_table,
)

__all__ = [
    "ALL_FIGURES",
    "ComparisonRow",
    "FigureResult",
    "SweepPoint",
    "compare_all",
    "compare_workload",
    "corpus_funnel",
    "deconfliction_ablation",
    "efficiency_chart",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "format_bar",
    "format_table",
    "funccall_microbenchmark",
    "markdown_table",
    "sm_occupancy_table",
    "table2",
    "render_timeline",
    "convergence_series",
    "assign_symbols",
    "threshold_sweep",
]
