"""Pre-Volta stack reconvergence vs Volta independent thread scheduling.

Section 2 background made measurable: the stack machine reconverges
structurally at post-dominators and cannot honor Speculative Reconvergence
barriers; Volta's ITS + convergence barriers can. SR therefore moves the
needle only on the ITS machine.
"""

from repro.harness.report import format_table
from repro.simt import GPUMachine, GlobalMemory, StackGPUMachine
from repro.workloads import get_workload


def test_stack_vs_its(once):
    def run():
        rows = []
        for name in ("mcb", "pathtracer"):
            workload = get_workload(name)
            base = workload.compile(mode="baseline")
            sr = workload.compile(mode="sr")
            measured = {}
            for label, machine_cls, prog in (
                ("stack/base", StackGPUMachine, base),
                ("stack/sr", StackGPUMachine, sr),
                ("its/base", GPUMachine, base),
                ("its/sr", GPUMachine, sr),
            ):
                memory = GlobalMemory()
                args = workload.setup(memory)
                launch = machine_cls(prog.module).launch(
                    workload.kernel_name, 32, args=args, memory=memory
                )
                measured[label] = launch
            rows.append(
                (
                    name,
                    measured["stack/base"].simt_efficiency,
                    measured["stack/sr"].simt_efficiency,
                    measured["its/base"].simt_efficiency,
                    measured["its/sr"].simt_efficiency,
                )
            )
        return rows

    rows = once(run)
    for name, stack_base, stack_sr, its_base, its_sr in rows:
        # SR is inert on the stack machine, effective on ITS.
        assert abs(stack_sr - stack_base) < 1e-9, name
        assert its_sr > its_base, name
    print("\n" + format_table(
        ["workload", "stack eff (base)", "stack eff (SR)",
         "ITS eff (base)", "ITS eff (SR)"],
        rows,
        title="SR requires independent thread scheduling",
    ))
