"""AST-level loop transformations interacting with Speculative
Reconvergence (Section 6, "Interaction with loop optimizations").

* :func:`unroll_while` — partial unrolling by a factor of N. "If the inner
  loop of a loop nest is partially unrolled by a factor of N, Loop Merge
  may be still applied. Reconvergence is needed only once per N iterations
  of the inner loop body, which may reduce the overhead of synchronization
  for reconvergence." Each extra copy is guarded by the (re-evaluated)
  loop condition, so any trip count remains correct; the label stays on
  the first copy only, so threads wait once per N iterations.
* :func:`fully_unroll_for` — complete unrolling of constant-trip ``For``
  loops. "If a loop is completely unrolled, Iteration Delay and Loop Merge
  cannot be applied" — the transform refuses to unroll a loop whose body
  carries a predicted label, surfacing exactly that conflict.
"""

from __future__ import annotations

import copy

from repro.errors import TransformError
from repro.frontend import ast_nodes as A


def _contains_label(node, label=None):
    """Does the subtree contain a Label (optionally a specific one)?"""
    if isinstance(node, A.Label):
        if label is None or node.name == label:
            return True
        return _contains_label(node.statement, label)
    if isinstance(node, A.Block):
        return any(_contains_label(s, label) for s in node.statements)
    if isinstance(node, A.If):
        if _contains_label(node.then_body, label):
            return True
        return node.else_body is not None and _contains_label(node.else_body, label)
    if isinstance(node, (A.While, A.For)):
        return _contains_label(node.body, label)
    return False


def _strip_labels(node):
    """A deep copy of the subtree with Label wrappers removed (the copies
    of an unrolled body must not duplicate the reconvergence point)."""
    node = copy.deepcopy(node)

    def strip(n):
        if isinstance(n, A.Label):
            return strip(n.statement)
        if isinstance(n, A.Block):
            n.statements = [strip(s) for s in n.statements]
            return n
        if isinstance(n, A.If):
            n.then_body = strip(n.then_body)
            if n.else_body is not None:
                n.else_body = strip(n.else_body)
            return n
        if isinstance(n, (A.While, A.For)):
            n.body = strip(n.body)
            return n
        return n

    return strip(node)


def unroll_while(loop, factor):
    """Partially unroll a ``While`` by ``factor``; returns a new While.

    The result executes the body up to ``factor`` times per header test::

        while (c) { B }   ->   while (c) { B; if (c) { B'; if (c) { B'' }}}

    where the copies ``B'``/``B''`` have their reconvergence labels
    stripped, so a Loop Merge wait fires once per ``factor`` iterations.
    """
    if not isinstance(loop, A.While):
        raise TransformError(f"unroll_while needs a While, got {loop!r}")
    if factor < 2:
        raise TransformError(f"unroll factor must be >= 2, got {factor}")
    body = loop.body
    unrolled = None
    for _ in range(factor - 1):
        copy_body = _strip_labels(body)
        if unrolled is not None:
            copy_body = A.Block(
                list(copy_body.statements)
                + [A.If(copy.deepcopy(loop.cond), unrolled)]
            )
        unrolled = copy_body
    new_body = A.Block(
        list(copy.deepcopy(body).statements)
        + [A.If(copy.deepcopy(loop.cond), unrolled)]
    )
    return A.While(copy.deepcopy(loop.cond), new_body)


def unroll_labeled_while(decl, label, factor):
    """Unroll the innermost While whose body contains ``label`` (in place
    on a deep copy of ``decl``); returns the new FuncDecl."""
    decl = copy.deepcopy(decl)
    found = []

    def visit(node):
        if isinstance(node, A.Block):
            for index, stmt in enumerate(node.statements):
                if (
                    isinstance(stmt, A.While)
                    and _contains_label(stmt.body, label)
                    and not any(
                        _contains_label(s, label)
                        for s in _inner_loops(stmt.body)
                    )
                ):
                    node.statements[index] = unroll_while(stmt, factor)
                    found.append(stmt)
                else:
                    visit(stmt)
        elif isinstance(node, A.If):
            visit(node.then_body)
            if node.else_body is not None:
                visit(node.else_body)
        elif isinstance(node, (A.While, A.For)):
            visit(node.body)
        elif isinstance(node, A.Label):
            visit(node.statement)

    visit(decl.body)
    if not found:
        raise TransformError(f"no while loop contains label {label!r}")
    return decl


def _inner_loops(block):
    loops = []

    def visit(node):
        if isinstance(node, (A.While, A.For)):
            loops.append(node)
            visit(node.body)
        elif isinstance(node, A.Block):
            for stmt in node.statements:
                visit(stmt)
        elif isinstance(node, A.If):
            visit(node.then_body)
            if node.else_body is not None:
                visit(node.else_body)
        elif isinstance(node, A.Label):
            visit(node.statement)

    visit(block)
    return loops


def fully_unroll_for(loop):
    """Completely unroll a constant-range ``For``; returns a Block.

    Refuses when the body carries a reconvergence label: a fully unrolled
    loop has no iterations left to collect threads across (Section 6).
    """
    if not isinstance(loop, A.For):
        raise TransformError(f"fully_unroll_for needs a For, got {loop!r}")
    if not isinstance(loop.start, A.Num) or not isinstance(loop.stop, A.Num):
        raise TransformError("can only fully unroll constant-range loops")
    if _contains_label(loop.body):
        raise TransformError(
            "cannot fully unroll a loop whose body is a predicted "
            "reconvergence point (Iteration Delay / Loop Merge would no "
            "longer apply)"
        )
    statements = []
    for value in range(int(loop.start.value), int(loop.stop.value)):
        statements.append(A.Let(loop.var, A.Num(value)))
        statements.extend(copy.deepcopy(loop.body).statements)
    return A.Block(statements)
