"""Call graph construction and orderings.

Used by the interprocedural barrier propagation (Section 4.4), which pushes
barrier information "upwards through the call graph from the callee to the
call site", and by module-level divergence analysis.
"""

from __future__ import annotations

from repro.ir.instructions import FuncRef, Opcode


class CallGraph:
    """callees/callers maps plus the call sites for each edge."""

    def __init__(self):
        self.callees = {}    # caller -> set of callee names
        self.callers = {}    # callee -> set of caller names
        self.call_sites = {} # (caller, callee) -> list of (block_name, index)

    def add_function(self, name):
        self.callees.setdefault(name, set())
        self.callers.setdefault(name, set())

    def add_call(self, caller, callee, block_name, index):
        self.add_function(caller)
        self.add_function(callee)
        self.callees[caller].add(callee)
        self.callers[callee].add(caller)
        self.call_sites.setdefault((caller, callee), []).append((block_name, index))

    def sites(self, caller, callee):
        return list(self.call_sites.get((caller, callee), []))

    def all_sites_of(self, callee):
        """Every call site of ``callee`` as (caller, block_name, index)."""
        result = []
        for (caller, target), sites in self.call_sites.items():
            if target == callee:
                result.extend((caller, block, index) for block, index in sites)
        return result

    def functions(self):
        return list(self.callees)


def call_graph(module):
    """Build the call graph of a module."""
    graph = CallGraph()
    for function in module:
        graph.add_function(function.name)
        for block, index, instr in function.instructions():
            if instr.opcode is Opcode.CALL:
                callee = instr.operands[0]
                if isinstance(callee, FuncRef):
                    graph.add_call(function.name, callee.name, block.name, index)
    return graph


def reverse_topological(graph):
    """Callees-first order; cycles (recursion) broken arbitrarily."""
    visited = set()
    order = []

    def visit(name, stack):
        if name in visited or name in stack:
            return
        stack.add(name)
        for callee in sorted(graph.callees.get(name, ())):
            visit(callee, stack)
        stack.remove(name)
        visited.add(name)
        order.append(name)

    for name in sorted(graph.functions()):
        visit(name, set())
    return order
