"""Flat global memory shared by all warps of a launch.

Addresses are word indices (not bytes). A simple bump allocator hands out
array regions so workloads can build lookup tables; the coalescing cost is
computed by the :class:`repro.simt.costs.CostModel`, not here.
"""

from __future__ import annotations

from repro.errors import SimulationError


class GlobalMemory:
    """Word-addressed global memory with a bump allocator."""

    def __init__(self):
        self._cells = {}
        self._next_free = 0
        self._regions = {}

    def alloc(self, size, name=None, fill=0):
        """Reserve ``size`` words; returns the base address."""
        if size < 0:
            raise SimulationError(f"negative allocation size {size}")
        base = self._next_free
        self._next_free += size
        if fill != 0:
            for offset in range(size):
                self._cells[base + offset] = fill
        if name is not None:
            self._regions[name] = (base, size)
        return base

    def alloc_array(self, values, name=None):
        """Allocate and initialize a region from ``values``."""
        base = self.alloc(len(values), name=name)
        for offset, value in enumerate(values):
            self._cells[base + offset] = value
        return base

    def region(self, name):
        """(base, size) of a named region."""
        try:
            return self._regions[name]
        except KeyError:
            raise SimulationError(f"no memory region named {name!r}") from None

    def read_region(self, name):
        base, size = self.region(name)
        return [self.load(base + i) for i in range(size)]

    def load(self, addr):
        return self._cells.get(int(addr), 0)

    def store(self, addr, value):
        self._cells[int(addr)] = value

    def atom_add(self, addr, value):
        """Atomic fetch-and-add; returns the old value."""
        key = int(addr)
        old = self._cells.get(key, 0)
        self._cells[key] = old + value
        return old

    def snapshot(self):
        """Copy of all written cells (for result comparison in tests)."""
        return dict(self._cells)

    def __len__(self):
        return len(self._cells)
