"""Program analyses: CFG orders, dominators, loops, dataflow, divergence."""

from repro.analysis.callgraph import CallGraph, call_graph, reverse_topological
from repro.analysis.cfg_utils import (
    CFGView,
    add_virtual_exit,
    can_reach,
    reachable_from,
    reverse_postorder,
)
from repro.analysis.dataflow import DataflowResult, solve_backward, solve_forward
from repro.analysis.divergence import (
    DivergenceAnalysis,
    analyze_module_divergence,
    influence_region,
)
from repro.analysis.dominators import (
    DominatorTree,
    PostDominatorTree,
    compute_dominators,
    compute_post_dominators,
    dominator_tree,
    post_dominator_tree,
)
from repro.analysis.loops import Loop, LoopNest, compute_loops, loop_nest

__all__ = [
    "CFGView",
    "CallGraph",
    "DataflowResult",
    "DivergenceAnalysis",
    "DominatorTree",
    "Loop",
    "LoopNest",
    "PostDominatorTree",
    "add_virtual_exit",
    "analyze_module_divergence",
    "call_graph",
    "can_reach",
    "compute_dominators",
    "compute_loops",
    "compute_post_dominators",
    "dominator_tree",
    "influence_region",
    "loop_nest",
    "post_dominator_tree",
    "reachable_from",
    "reverse_postorder",
    "reverse_topological",
    "solve_backward",
    "solve_forward",
]
