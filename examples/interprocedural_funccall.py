#!/usr/bin/env python
"""Interprocedural Speculative Reconvergence (Figure 2c, Section 4.4).

Both sides of a divergent branch call the same expensive function; PDOM
analysis cannot see the shared body as a reconvergence point because the
calls come from different program locations. ``predict @shade`` collects
the warp at the function entry instead.

Also demonstrates the wrapper-function transform the paper prescribes for
functions called from multiple independent regions.

Run: ``python examples/interprocedural_funccall.py``
"""

from repro.core import make_wrapper
from repro.frontend import compile_kernel_source
from repro.ir.printer import format_function
from repro.workloads import get_workload


def main():
    workload = get_workload("funccall")
    baseline = workload.run(mode="baseline")
    optimized = workload.run(mode="sr")
    assert baseline.checksum == optimized.checksum

    base_shade = workload.shade_efficiency(baseline.launch)
    opt_shade = workload.shade_efficiency(optimized.launch)
    print("Figure 2(c) microbenchmark — divergent branch, both sides call @shade")
    print(f"  SIMT efficiency inside @shade: {base_shade:.1%} -> {opt_shade:.1%}")
    print(f"  overall: {baseline.simt_efficiency:.1%} -> "
          f"{optimized.simt_efficiency:.1%}")
    print(f"  speedup: {baseline.cycles / optimized.cycles:.2f}x\n")

    # The wrapper transform: hide a shared callee behind a fresh entry
    # point so that entry can serve as the reconvergence PC.
    module = compile_kernel_source(workload.source()).clone()
    wrapper = make_wrapper(module, "shade")
    print(f"wrapper created: @{wrapper.name} (all call sites redirected)")
    print(format_function(wrapper))


if __name__ == "__main__":
    main()
