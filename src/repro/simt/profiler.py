"""nvprof-style counters: SIMT efficiency, cycles, per-block profiles.

SIMT efficiency is the average fraction of active lanes per issued warp
instruction (the metric of Figures 7–9). The per-block visit and activity
profile feeds the profile-guided variant of the Section 4.5 heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import IssueEvent
from repro.simt.warp import WARP_SIZE


@dataclass
class BlockProfile:
    """Execution profile of one basic block."""

    issues: int = 0          # issued instructions attributed to the block
    active_sum: int = 0      # total active lanes over those issues
    visits: int = 0          # times the block was entered (index 0 issued)
    cycles: int = 0

    @property
    def average_active(self):
        return self.active_sum / self.issues if self.issues else 0.0


class Profiler:
    """Aggregates issue-level counters over an entire launch."""

    def __init__(self, trace=False):
        self.issued = 0
        self.active_sum = 0
        self.cycles_sum = 0
        self.opcode_counts = {}
        self.block_profiles = {}    # (function, block) -> BlockProfile
        self.warp_cycles = {}       # warp_id -> cycles
        self.barrier_issues = 0
        #: issue slots retired through fused segments and the number of
        #: segments executed (diagnostics only — deliberately NOT part of
        #: summary(), which must be invariant under fusion).
        self.fused_issues = 0
        self.fused_segments = 0
        #: warp-batching diagnostics (repro.simt.batch): lockstep epochs
        #: attempted and epochs rolled back by the write-set guard. Like
        #: the fused_* counters these describe the engine, not the
        #: simulated program, so summary() excludes them.
        self.batch_epochs = 0
        self.batch_rollbacks = 0
        #: FootprintMemory diagnostics for the batcher's guarded epochs:
        #: slots replayed per-slot after a rollback and the largest
        #: single-burst footprint (words) any guarded epoch touched.
        self.batch_replayed_slots = 0
        self.batch_peak_footprint = 0
        #: speculative-round diagnostics (repro.simt.spec): rounds
        #: attempted, warp bursts committed/rolled back, conflicted
        #: rounds retried serially, adaptive round-size backoffs, slots
        #: discarded by rollbacks, and the largest per-warp speculative
        #: footprint. Engine-only, excluded from the invariant part of
        #: summary() like the other layer counters.
        self.spec_rounds = 0
        self.spec_committed = 0
        self.spec_rolled_back = 0
        self.spec_retries = 0
        self.spec_backoffs = 0
        self.spec_replayed_slots = 0
        self.spec_peak_footprint = 0
        #: non-forced-pick attribution: why serial slots could not take
        #: the forced-pick fast lanes (segment fusion, batching) — the
        #: denominator for spec.* coverage. ``tie`` counts convergence
        #: size ties (non-strict-largest), ``multi_group`` counts
        #: divergent warps under singleton-only policies, ``observed``
        #: counts slots issued with no segment engine at all (metrics,
        #: sink, or trace attached, or fastpath/segments off). Engine
        #: telemetry: varies with knobs while results stay identical.
        self.nonforced_tie = 0
        self.nonforced_multi_group = 0
        self.nonforced_observed = 0
        #: SoA diagnostics (repro.simt.soa): pure chunks executed as numpy
        #: vector columns vs thread-major while SoA was enabled (narrow
        #: group or no bit-identical vector form). Engine-only, excluded
        #: from summary() like the other layer counters.
        self.soa_chunks = 0
        self.soa_fallback_chunks = 0
        #: segment-JIT diagnostics (repro.simt.jit): fused segments
        #: executed through compiled code, tier-up attempts, and codegen
        #: deopts during this launch. Engine-only, excluded from
        #: summary() like the other layer counters.
        self.jit_segments = 0
        self.jit_tierups = 0
        self.jit_deopts = 0
        #: when tracing, every issue as a cycle-stamped IssueEvent (which
        #: unpacks as the legacy ``(warp_id, function, block, lanes)`` tuple)
        self.trace = [] if trace else None
        #: LaunchMetrics attached by the machine when metrics are enabled
        self.metrics = None

    def record(self, warp_id, pc, opcode, active, cycles, is_barrier_op=False,
               lanes=None):
        function, block, index = pc
        if self.trace is not None:
            self.trace.append(
                IssueEvent(
                    warp_id=warp_id,
                    function=function,
                    block=block,
                    index=index,
                    opcode=opcode,
                    lanes=lanes or frozenset(),
                    ts=self.warp_cycles.get(warp_id, 0),
                    dur=cycles,
                    active=active,
                )
            )
        self.issued += 1
        self.active_sum += active
        self.cycles_sum += cycles
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1
        key = (function, block)
        profile = self.block_profiles.get(key)
        if profile is None:
            profile = BlockProfile()
            self.block_profiles[key] = profile
        profile.issues += 1
        profile.active_sum += active
        profile.cycles += cycles
        if index == 0:
            profile.visits += 1
        self.warp_cycles[warp_id] = self.warp_cycles.get(warp_id, 0) + cycles
        if is_barrier_op:
            self.barrier_issues += 1

    def record_segment(self, warp_id, pc, segment, active, cycles):
        """Batched accounting for one fused segment: exactly what ``n``
        per-instruction ``record`` calls would have accumulated, in O(1)
        per counter. Segments never contain barrier ops, and fusion is
        disabled while tracing, so neither path appears here.
        """
        n = segment.n
        self.issued += n
        self.active_sum += active * n
        self.cycles_sum += cycles
        counts = self.opcode_counts
        for opcode, count in segment.opcode_counts:
            counts[opcode] = counts.get(opcode, 0) + count
        key = (pc[0], pc[1])
        profile = self.block_profiles.get(key)
        if profile is None:
            profile = BlockProfile()
            self.block_profiles[key] = profile
        profile.issues += n
        profile.active_sum += active * n
        profile.cycles += cycles
        if pc[2] == 0:
            profile.visits += 1
        self.warp_cycles[warp_id] = self.warp_cycles.get(warp_id, 0) + cycles
        self.fused_issues += n
        self.fused_segments += 1

    @property
    def simt_efficiency(self):
        """Average active-lane fraction per issued instruction (0..1)."""
        if self.issued == 0:
            return 1.0
        return self.active_sum / (self.issued * WARP_SIZE)

    @property
    def total_cycles(self):
        """Kernel runtime: the slowest warp (warps execute in parallel)."""
        if not self.warp_cycles:
            return 0
        return max(self.warp_cycles.values())

    def block_profile(self, function, block):
        return self.block_profiles.get((function, block), BlockProfile())

    def region_efficiency(self, keys):
        """SIMT efficiency restricted to a set of (function, block) keys."""
        issued = sum(self.block_profiles[k].issues for k in keys if k in self.block_profiles)
        active = sum(self.block_profiles[k].active_sum for k in keys if k in self.block_profiles)
        if issued == 0:
            return 1.0
        return active / (issued * WARP_SIZE)

    @property
    def avg_active_lanes(self):
        """Average active lanes per issued instruction (0..WARP_SIZE)."""
        return self.active_sum / self.issued if self.issued else 0.0

    def opcode_issues(self):
        """Per-opcode issue counts keyed by mnemonic, sorted descending."""
        counts = {
            getattr(op, "value", str(op)): n
            for op, n in self.opcode_counts.items()
        }
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def engine_counters(self):
        """This launch's engine-layer counters, namespaced like
        :data:`repro.obs.counters.COUNTERS`. These describe how the
        *engine* executed the launch (fusion coverage, batch epochs), not
        the simulated program — results are identical whatever they say.
        """
        fused = self.fused_issues
        fallback = self.issued - fused
        total = fused + fallback
        return {
            "segments.fused_instrs": fused,
            "segments.fallback_instrs": fallback,
            "segments.fused_segments": self.fused_segments,
            "segments.coverage": fused / total if total else 0.0,
            "batch.epochs": self.batch_epochs,
            "batch.rollbacks": self.batch_rollbacks,
            "batch.replayed_slots": self.batch_replayed_slots,
            "batch.peak_footprint": self.batch_peak_footprint,
            "spec.rounds": self.spec_rounds,
            "spec.committed": self.spec_committed,
            "spec.rolled_back": self.spec_rolled_back,
            "spec.retries": self.spec_retries,
            "spec.backoffs": self.spec_backoffs,
            "spec.replayed_slots": self.spec_replayed_slots,
            "spec.peak_footprint": self.spec_peak_footprint,
            "spec.nonforced_tie": self.nonforced_tie,
            "spec.nonforced_multi_group": self.nonforced_multi_group,
            "spec.nonforced_observed": self.nonforced_observed,
            "soa.vector_chunks": self.soa_chunks,
            "soa.fallback_chunks": self.soa_fallback_chunks,
            "jit.executed_segments": self.jit_segments,
            "jit.tierups": self.jit_tierups,
            "jit.deopts": self.jit_deopts,
        }

    def summary(self):
        """Launch digest; stall attribution appears when metrics were on.

        The ``counters`` and ``nonforced_picks`` entries are engine
        telemetry (fusion coverage, batch epochs, why picks were not
        forced) and therefore *vary* with engine knobs even though every
        other field is invariant; consumers comparing summaries across
        engine configurations must drop both (as the conformance
        fingerprint does).
        """
        return {
            "nonforced_picks": {
                "tie": self.nonforced_tie,
                "multi_group": self.nonforced_multi_group,
                "observed": self.nonforced_observed,
            },
            "issued": self.issued,
            "cycles": self.total_cycles,
            "simt_efficiency": self.simt_efficiency,
            "barrier_issues": self.barrier_issues,
            "avg_active_lanes": self.avg_active_lanes,
            "opcode_issues": self.opcode_issues(),
            "stall_cycles": (
                self.metrics.stall_cycles() if self.metrics is not None else {}
            ),
            "counters": self.engine_counters(),
        }
