"""Thread coarsening (Section 3).

"Programs that have a non-nested divergent loop may be modified using
thread coarsening, i.e. combining work from multiple threads into a single
thread by converting a loop into nested loops which can then be optimized"
— RSBench's kernel gets its outer loop this way: "instead of a single
variable length task per thread, we assign a large number of tasks per
thread to enable load balancing over time."

Two flavors:

* :func:`coarsen_static` — each thread processes tasks
  ``tid, tid + n_threads, tid + 2·n_threads, …`` (deterministic; results
  are schedule-invariant, which the correctness tests rely on);
* :func:`coarsen_dynamic` — threads pull task ids from a global counter
  with ``atomadd`` (the GPU-scheduler-style work distribution the paper
  describes; task-to-thread assignment then depends on timing).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.frontend import ast_nodes as A


def _body_as_task(decl, task_var):
    if not isinstance(decl.body, A.Block):
        raise TransformError(f"@{decl.name}: body must be a Block")
    return decl.body


def coarsen_static(decl, task_var="task", n_tasks_var="n_tasks", n_threads_var="n_threads"):
    """Wrap a one-task kernel body in a strided outer loop.

    The kernel gains ``n_tasks`` / ``n_threads`` parameters; the original
    body runs once per ``task = tid + k * n_threads``.
    """
    body = _body_as_task(decl, task_var)
    new_body = A.Block(
        [
            A.Let(task_var, A.CallExpr("tid", [])),
            A.While(
                A.Bin("<", A.Var(task_var), A.Var(n_tasks_var)),
                A.Block(
                    list(body.statements)
                    + [
                        A.Assign(
                            task_var,
                            A.Bin("+", A.Var(task_var), A.Var(n_threads_var)),
                        )
                    ]
                ),
            ),
        ]
    )
    params = list(decl.params)
    for param in (n_tasks_var, n_threads_var):
        if param not in params:
            params.append(param)
    return A.FuncDecl(
        name=decl.name, params=params, body=new_body, is_kernel=decl.is_kernel
    )


def coarsen_dynamic(decl, task_var="task", n_tasks_var="n_tasks", counter_addr_var="task_counter"):
    """Wrap a one-task kernel body in an atomic work-queue loop.

    Each iteration grabs ``task = atomadd(task_counter, 1)`` and stops once
    the counter passes ``n_tasks`` — dynamic load balancing over time.
    """
    body = _body_as_task(decl, task_var)
    loop = A.While(
        A.Num(1),
        A.Block(
            [
                A.Let(
                    task_var,
                    A.CallExpr("atomadd", [A.Var(counter_addr_var), A.Num(1)]),
                ),
                A.If(
                    A.Bin(">=", A.Var(task_var), A.Var(n_tasks_var)),
                    A.Block([A.Break()]),
                ),
            ]
            + list(body.statements)
        ),
    )
    params = list(decl.params)
    for param in (n_tasks_var, counter_addr_var):
        if param not in params:
            params.append(param)
    return A.FuncDecl(
        name=decl.name,
        params=params,
        body=A.Block([loop]),
        is_kernel=decl.is_kernel,
    )
