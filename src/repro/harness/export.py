"""Machine-readable export of experiment results (JSON / CSV).

The figure generators return structured data; this module serializes it so
external tooling (plotting scripts, CI dashboards) can consume the
reproduction's measurements. ``python -m repro.harness.export`` writes one
JSON file with every fast figure.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys

from repro.harness.experiment import compare_all, threshold_sweep
from repro.workloads import FIGURE7_WORKLOADS


def comparison_rows_to_dicts(rows):
    return [
        {
            "workload": r.workload,
            "pattern": r.pattern,
            "baseline_eff": r.baseline_eff,
            "sr_eff": r.sr_eff,
            "efficiency_gain": r.efficiency_gain,
            "baseline_cycles": r.baseline_cycles,
            "sr_cycles": r.sr_cycles,
            "speedup": r.speedup,
            "threshold": r.threshold,
            "checksum_ok": r.checksum_ok,
        }
        for r in rows
    ]


def sweep_to_dicts(baseline, points):
    return {
        "baseline": {
            "simt_efficiency": baseline.simt_efficiency,
            "cycles": baseline.cycles,
        },
        "points": [
            {
                "threshold": p.threshold,
                "simt_efficiency": p.simt_efficiency,
                "cycles": p.cycles,
                "speedup": p.speedup,
            }
            for p in points
        ],
    }


def collect_results(seed=2020, sweep_workloads=("pathtracer", "xsbench")):
    """All fast-figure measurements as one JSON-serializable dict."""
    rows = compare_all(FIGURE7_WORKLOADS, seed=seed)
    sweeps = {}
    for name in sweep_workloads:
        baseline, points = threshold_sweep(name, seed=seed)
        sweeps[name] = sweep_to_dicts(baseline, points)
    return {
        "figure7_8": comparison_rows_to_dicts(rows),
        "figure9": sweeps,
        "seed": seed,
    }


def to_csv(rows):
    """Figure 7/8 rows as CSV text."""
    dicts = comparison_rows_to_dicts(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(dicts[0]))
    writer.writeheader()
    writer.writerows(dicts)
    return buffer.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default="results.json")
    parser.add_argument("--seed", type=int, default=2020)
    args = parser.parse_args(argv)
    results = collect_results(seed=args.seed)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
