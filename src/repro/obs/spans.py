"""Pass-pipeline spans: timed phases with IR before/after deltas.

``ReconvergenceCompiler.compile`` wraps each phase (optimize, pdom-sync,
SR insertion, deconfliction, allocation, verify...) in a :class:`Span`
that records wall time plus the module's shape (blocks / instructions /
barrier instructions) before and after — so a pass report answers "what
did this phase change and what did it cost" at a glance, and the Chrome
trace exporter renders the pipeline on its own track next to the
simulator's events.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["IRStats", "Span", "SpanRecorder", "module_stats"]


@dataclass(frozen=True)
class IRStats:
    """The shape of a module at one instant."""

    functions: int = 0
    blocks: int = 0
    instructions: int = 0
    barrier_instructions: int = 0

    def delta(self, other):
        """Per-field ``other - self`` as a dict (the span's IR delta)."""
        return {
            "functions": other.functions - self.functions,
            "blocks": other.blocks - self.blocks,
            "instructions": other.instructions - self.instructions,
            "barrier_instructions": (
                other.barrier_instructions - self.barrier_instructions
            ),
        }


def module_stats(module):
    """Count functions/blocks/instructions/barrier-ops of ``module``."""
    functions = blocks = instructions = barrier_instructions = 0
    for function in module:
        functions += 1
        for block in function.blocks:
            blocks += 1
            instructions += len(block.instructions)
            for instr in block.instructions:
                if instr.is_barrier_op:
                    barrier_instructions += 1
    return IRStats(
        functions=functions,
        blocks=blocks,
        instructions=instructions,
        barrier_instructions=barrier_instructions,
    )


@dataclass
class Span:
    """One timed pipeline phase."""

    name: str
    start: float            # seconds, relative to the recorder's epoch
    end: float = 0.0
    before: IRStats = None
    after: IRStats = None

    @property
    def duration(self):
        return self.end - self.start

    @property
    def ir_delta(self):
        if self.before is None or self.after is None:
            return {}
        return self.before.delta(self.after)

    def describe(self):
        text = f"{self.name}: {self.duration * 1e3:.2f} ms"
        delta = {k: v for k, v in self.ir_delta.items() if v}
        if delta:
            text += " (" + ", ".join(
                f"{k} {v:+d}" for k, v in sorted(delta.items())
            ) + ")"
        return text

    def to_dict(self):
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "ir_delta": self.ir_delta,
        }


class SpanRecorder:
    """Collects :class:`Span` objects; hand it a module to get IR deltas."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.spans = []

    @contextmanager
    def span(self, name, module=None):
        before = module_stats(module) if module is not None else None
        record = Span(name=name, start=self._clock() - self._epoch,
                      before=before)
        try:
            yield record
        finally:
            record.end = self._clock() - self._epoch
            record.after = module_stats(module) if module is not None else None
            self.spans.append(record)

    def describe(self):
        return "\n".join(span.describe() for span in self.spans)
