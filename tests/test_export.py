"""JSON/CSV export tests."""

import json

from repro.harness.experiment import compare_all
from repro.harness.export import (
    collect_results,
    collect_summaries,
    comparison_rows_to_dicts,
    main as export_main,
    summaries_to_csv,
    to_csv,
)
from tests.test_workloads import FAST_PARAMS


class TestExport:
    def test_rows_to_dicts(self):
        rows = compare_all(["mcb"], params=FAST_PARAMS)
        dicts = comparison_rows_to_dicts(rows)
        assert dicts[0]["workload"] == "mcb"
        assert 0 < dicts[0]["baseline_eff"] <= 1

    def test_csv_roundtrip(self):
        rows = compare_all(["mcb"], params=FAST_PARAMS)
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,")
        assert lines[1].startswith("mcb,")

    def test_collect_results_serializable(self):
        results = collect_results(
            sweep_workloads=(),
            summary_workloads={"funccall": FAST_PARAMS["funccall"]},
        )
        text = json.dumps(results)
        parsed = json.loads(text)
        assert len(parsed["figure7_8"]) == 9
        summary = parsed["summaries"]["funccall"]
        assert summary["stall_cycles"]
        assert "metrics" in summary

    def test_collect_summaries_has_attribution(self):
        summaries = collect_summaries(
            workloads={"mcb": FAST_PARAMS["mcb"]}
        )
        summary = summaries["mcb"]
        assert summary["avg_active_lanes"] > 0
        assert summary["metrics"]["active_lane_cycles"] > 0
        assert "barrier_wait" in summary["stall_cycles"]

    def test_summaries_csv(self):
        summaries = collect_summaries(
            workloads={"funccall": FAST_PARAMS["funccall"]}
        )
        lines = summaries_to_csv(summaries).strip().splitlines()
        assert lines[0].startswith("workload,reason,lane_cycles")
        reasons = {line.split(",")[1] for line in lines[1:]}
        assert "active" in reasons and "barrier_wait" in reasons

    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        csv_out = tmp_path / "s.csv"
        assert export_main(
            ["--output", str(out), "--summary-csv", str(csv_out)]
        ) == 0
        data = json.loads(out.read_text())
        assert "figure9" in data
        assert set(data["figure9"]) == {"pathtracer", "xsbench"}
        assert "summaries" in data
        assert csv_out.read_text().startswith("workload,")
