"""Parallel sweep runner: fan independent experiment configs over workers.

Every figure regeneration is a bag of independent experiments — one
``compare_workload`` per Table 2 row, one compile-and-launch per threshold
sweep point — that share nothing but the (deterministic) seed. This module
farms such a bag over a ``multiprocessing`` pool and merges results in
submission order, so a parallel sweep is *bit-identical* to the serial
one: ``pool.map`` preserves ordering, each worker runs with its own
process-private caches, and all randomness is derived from the explicit
seed, never from worker identity or scheduling.

Tasks are ``(fn, args, kwargs)`` triples with ``fn`` a module-level
function (workers import it by reference under the fork start method, and
by qualified name under spawn). ``jobs<=1``, a single task, or an
unavailable ``multiprocessing`` all degrade to a plain serial loop — the
``--jobs`` flag can therefore be wired through unconditionally.
"""

from __future__ import annotations

import multiprocessing
import os

__all__ = ["resolve_jobs", "run_tasks", "task"]


def resolve_jobs(jobs=None):
    """Normalize a ``--jobs`` value: None/0 consult ``REPRO_JOBS``, then 1.

    An explicit negative value means "one worker per CPU".
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = int(env)
    jobs = int(jobs)
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, jobs)


def task(fn, *args, **kwargs):
    """Package one unit of work for :func:`run_tasks`."""
    return (fn, args, kwargs)


def _call(packed):
    fn, args, kwargs = packed
    return fn(*args, **kwargs)


def run_tasks(tasks, jobs=None):
    """Run ``(fn, args, kwargs)`` triples; results in submission order.

    With ``jobs`` (resolved per :func:`resolve_jobs`) greater than one and
    more than one task, the tasks run on a process pool; otherwise serially
    in-process. Worker exceptions propagate to the caller either way.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*args, **kwargs) for fn, args, kwargs in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_call, tasks)
