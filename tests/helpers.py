"""Shared builders for the test suite."""

from __future__ import annotations

from repro.ir import Function, IRBuilder, Module


def simple_kernel(name="k", body=None):
    """A kernel with a single block: body(builder) then exit."""
    module = Module("test")
    fn = Function(name, is_kernel=True)
    module.add(fn)
    builder = IRBuilder(fn)
    builder.new_block("entry", switch=True)
    if body is not None:
        body(builder)
    builder.exit()
    return module


def diamond_function(divergent=True):
    """entry -> (then|else) -> join -> exit, with an optionally divergent
    branch predicate."""
    module = Module("test")
    fn = Function("k", is_kernel=True)
    module.add(fn)
    b = IRBuilder(fn)
    b.new_block("entry", switch=True)
    pred_src = b.tid() if divergent else b.const(1)
    pred = b.lt(pred_src, 16)
    then_block = b.new_block("then")
    else_block = b.new_block("else")
    join = b.new_block("join")
    b.cbr(pred, then_block, else_block)
    b.set_block(then_block)
    b.const(1.0, hint="x")
    b.bra(join)
    b.set_block(else_block)
    b.const(2.0, hint="y")
    b.bra(join)
    b.set_block(join)
    b.store(b.tid(), 0.0)
    b.exit()
    return module, fn


def loop_function(trip_reg_divergent=True, n=4):
    """entry -> head -> body -> head; head -> exit. Divergent or uniform
    trip count."""
    module = Module("test")
    fn = Function("k", is_kernel=True)
    module.add(fn)
    b = IRBuilder(fn)
    b.new_block("entry", switch=True)
    tid = b.tid()
    limit = b.add(b.rem(tid, n), 1) if trip_reg_divergent else b.const(n)
    i = b.mov(0, hint="i")
    head = b.new_block("head")
    body = b.new_block("body")
    exit_block = b.new_block("exit")
    b.bra(head)
    b.set_block(head)
    b.cbr(b.lt(i, limit), body, exit_block)
    b.set_block(body)
    b.mov_to(i, b.add(i, 1))
    b.bra(head)
    b.set_block(exit_block)
    b.store(tid, i)
    b.exit()
    return module, fn


def listing1_module(n_iters=16, expensive=12, prob=0.25, with_predict=True):
    """The paper's Listing 1: loop with a divergent condition guarding an
    expensive then-block, labeled L1."""
    module = Module("listing1")
    fn = Function("k", is_kernel=True)
    module.add(fn)
    b = IRBuilder(fn)
    b.new_block("entry", switch=True)
    tid = b.tid()
    i = b.mov(0, hint="i")
    acc = b.mov(0.0, hint="acc")
    if with_predict:
        b.predict("L1")
    head = b.new_block("head")
    prolog = b.new_block("prolog")
    then_block = b.new_block("then", attrs={"label": "L1"})
    epilog = b.new_block("epilog")
    exit_block = b.new_block("exit")
    b.bra(head)
    b.set_block(head)
    b.cbr(b.lt(i, n_iters), prolog, exit_block)
    b.set_block(prolog)
    cond = b.lt(b.rand(), prob)
    b.cbr(cond, then_block, epilog)
    b.set_block(then_block)
    for _ in range(expensive):
        b.mov_to(acc, b.fma(acc, 1.0000001, 0.5))
    b.bra(epilog)
    b.set_block(epilog)
    b.mov_to(i, b.add(i, 1))
    b.bra(head)
    b.set_block(exit_block)
    b.store(tid, acc)
    b.exit()
    return module


def loop_merge_source(tasks=6, trip_hi=24, inner_fma=8, epilog_fma=2):
    """Textual Loop Merge kernel used across tests."""
    body = "\n".join(
        "            acc = fma(acc, 1.0000001, 0.5);" for _ in range(inner_fma)
    )
    epilog = "\n".join(
        "        acc = fma(acc, 0.999, 0.01);" for _ in range(epilog_fma)
    )
    return f"""
kernel lm(n_tasks) {{
    let acc = 0.0;
    let t = tid();
    predict L1;
    while (t < n_tasks) {{
        let u = hash01(t * 1.7);
        let trips = floor(u * u * {trip_hi}.0) + 1;
        let j = 0;
        while (j < trips) {{
            label L1: acc = fma(acc, 1.0000001, 0.5);
{body}
            j = j + 1;
        }}
{epilog}
        t = t + 32;
    }}
    store(tid(), acc);
}}
"""
