"""Generic iterative dataflow solver over block-level GEN/KILL problems.

Used by the paper's two analyses (Section 4.2.1):

* *Joined Barrier Analysis* (Equation 1) — forward, may (union):
  ``OUT(BB) = (IN(BB) - Kill(BB)) ∪ Gen(BB)``,
  ``IN(BB) = ∪ OUT(p) for p in preds(BB)``.
* *Barrier Live Range Analysis* (Equation 2) — backward, may (union):
  ``IN(BB) = (OUT(BB) - Kill(BB)) ∪ Gen(BB)``,
  ``OUT(BB) = ∪ IN(s) for s in succs(BB)``.

The solver works on frozensets of arbitrary hashable facts and iterates to a
fixpoint in reverse postorder (forward) or postorder (backward).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg_utils import reverse_postorder


@dataclass
class DataflowResult:
    """Per-block IN/OUT fact sets (frozensets keyed by block name)."""

    block_in: dict
    block_out: dict

    def in_of(self, name):
        return self.block_in[name]

    def out_of(self, name):
        return self.block_out[name]


def solve_forward(view, gen, kill, boundary=frozenset()):
    """Forward union dataflow. ``gen``/``kill`` map node -> set of facts."""
    order = reverse_postorder(view)
    in_sets = {node: frozenset() for node in view.nodes}
    out_sets = {node: frozenset() for node in view.nodes}
    in_sets[view.entry] = frozenset(boundary)
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == view.entry:
                new_in = frozenset(boundary)
            else:
                acc = set()
                for pred in view.preds[node]:
                    acc |= out_sets[pred]
                new_in = frozenset(acc)
            new_out = frozenset(
                (new_in - frozenset(kill.get(node, ()))) | frozenset(gen.get(node, ()))
            )
            if new_in != in_sets[node] or new_out != out_sets[node]:
                in_sets[node] = new_in
                out_sets[node] = new_out
                changed = True
    return DataflowResult(in_sets, out_sets)


def solve_backward(view, gen, kill, boundary=frozenset()):
    """Backward union dataflow (liveness-style)."""
    order = list(reversed(reverse_postorder(view)))
    # Include nodes unreachable in forward order but present in the graph.
    for node in view.nodes:
        if node not in order:
            order.append(node)
    in_sets = {node: frozenset() for node in view.nodes}
    out_sets = {node: frozenset() for node in view.nodes}
    changed = True
    while changed:
        changed = False
        for node in order:
            succs = view.succs[node]
            if succs:
                acc = set()
                for succ in succs:
                    acc |= in_sets[succ]
                new_out = frozenset(acc)
            else:
                new_out = frozenset(boundary)
            new_in = frozenset(
                (new_out - frozenset(kill.get(node, ()))) | frozenset(gen.get(node, ()))
            )
            if new_in != in_sets[node] or new_out != out_sets[node]:
                in_sets[node] = new_in
                out_sets[node] = new_out
                changed = True
    return DataflowResult(in_sets, out_sets)
