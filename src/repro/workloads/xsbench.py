"""XSBench: memory-bound macroscopic cross-section lookup (Table 2).

"Simulates a problem similar to RSBench, but is memory bound rather than
compute bound. In particular, the nested divergent loop in the XSBench
kernel has both an expensive inner loop and an expensive epilog."

The inner loop gathers from a large cross-section table (scattered,
uncoalesced accesses dominate); the per-task prolog models the
unionized-energy-grid binary search — a chain of dependent loads — so
*refilling an idle thread is expensive*. That is why XSBench prefers a
soft barrier with a low threshold: "An expensive process is required when
a thread wants a new task, and executing this process every time one or a
few threads become idle is not profitable. ... performance is best when
executing the inner loop until as few as four threads are participating"
(Section 5.3, Figure 9). A low threshold lets the inner loop keep rolling
while idle threads accumulate and refill in batches.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


@register
class XSBench(Workload):
    name = "xsbench"
    description = (
        "Memory-bound Monte Carlo cross-section lookup; expensive inner "
        "loop AND expensive epilog (binary search over the energy grid)"
    )
    pattern = "loop-merge"
    paper_note = (
        "Soft-barrier case study of Figure 9: peak performance at a low "
        "threshold (~4 threads still participating)."
    )
    kernel_name = "xsbench_lookup"
    sr_threshold = 4
    deterministic_memory = False
    defaults = {
        "n_tasks": 288,
        "grid_levels": 12,      # binary-search depth in the prolog/epilog
        "table_size": 4096,
        "trip_lo": 4,
        "trip_hi": 100,
    }

    def source(self):
        p = self.params
        # Refill: dependent-load chain emulating the grid binary search.
        search = "\n".join(
            " " * 8
            + f"idx = floor((idx + ld(grid + (floor(idx) % {p['table_size']}))) / 2.0) + {2 ** i};"
            for i in range(p["grid_levels"])
        )
        return f"""
kernel xsbench_lookup(n_tasks, queue, grid, xs_table, out) {{
    let acc = 0.0;
    let task = atomadd(queue, 1);
    let idx = 0.0;
    predict L1;
    while (task < n_tasks) {{
        // Prolog (the expensive refill): binary search for the energy
        // grid index — a chain of dependent, scattered loads.
        let e = hash01(task * 2.718281);
        idx = e * {p['table_size']}.0;
{search}
        // Heavy-tailed lookup length (number of nuclides in the energy
        // window): mostly short, occasionally very long.
        let u3 = hash01(task * 7.389056);
        let span = floor(u3 * u3 * u3 * {p['trip_hi'] - p['trip_lo']}.0) + {p['trip_lo']};
        let j = 0;
        let xs = 0.0;
        while (j < span) {{
            // Proposed reconvergence point: gather one nuclide's data from
            // the unionized grid (scattered across the table).
            label L1: xs = xs + ld(xs_table + floor(idx + j * 523.0) % {p['table_size']});
            xs = fma(xs, 0.999, 0.001);
            j = j + 1;
        }}
        acc = acc + xs / (span + 1.0);
        task = atomadd(queue, 1);
    }}
    store(out + tid(), acc);
}}
"""

    def setup(self, memory):
        size = self.params["table_size"]
        queue = memory.alloc(1, name="queue")
        grid = memory.alloc_array(
            [(i * 48271) % 97 for i in range(size)], name="grid"
        )
        xs_table = memory.alloc_array(
            [((i * 69621) % 1000) / 1000.0 for i in range(size)], name="xs_table"
        )
        out = memory.alloc(self.n_threads, name="out")
        return (self.params["n_tasks"], queue, grid, xs_table, out)
