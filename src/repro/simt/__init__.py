"""Volta-style SIMT warp simulator with convergence barriers."""

from repro.simt.barrier_state import ALL_MEMBERS, BarrierFile, ConvergenceBarrier
from repro.simt.costs import DEFAULT_COST_MODEL, CostModel
from repro.simt.executor import Executor
from repro.simt.fastpath import (
    DecodedInstruction,
    DecodedProgram,
    decode_program,
    fastpath_disabled,
    fastpath_enabled,
    set_fastpath,
)
from repro.simt.batch import (
    WarpBatcher,
    set_warp_batch,
    warp_batch_disabled,
    warp_batch_enabled,
)
from repro.simt.cta import CTASYNC_BARRIER, CTAContext
from repro.simt.grid import GridLaunch, GridResult, grid_sharding_enabled
from repro.simt.machine import DEFAULT_MAX_ISSUES, GPUMachine, LaunchResult
from repro.simt.segments import (
    Segment,
    SegmentTable,
    segments_disabled,
    segments_enabled,
    set_segments,
)
from repro.simt.spec import (
    SpecRounds,
    set_spec,
    spec_disabled,
    spec_enabled,
)
from repro.simt.soa import (
    classify_slots,
    set_soa,
    set_soa_lanes,
    soa_available,
    soa_disabled,
    soa_enabled,
)
from repro.simt.memory import GlobalMemory, SharedMemory
from repro.simt.profiler import BlockProfile, Profiler
from repro.simt.rng import XorShift32, mix_seed
from repro.simt.reference import run_reference_launch, run_reference_thread
from repro.simt.stack_machine import StackGPUMachine
from repro.simt.scheduler import (
    SCHEDULERS,
    ConvergenceScheduler,
    OldestFirstScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.simt.warp import WARP_SIZE, Frame, Thread, ThreadState, Warp

__all__ = [
    "ALL_MEMBERS",
    "BarrierFile",
    "BlockProfile",
    "CTASYNC_BARRIER",
    "CTAContext",
    "ConvergenceBarrier",
    "ConvergenceScheduler",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_MAX_ISSUES",
    "DecodedInstruction",
    "DecodedProgram",
    "Executor",
    "Frame",
    "GPUMachine",
    "GlobalMemory",
    "GridLaunch",
    "GridResult",
    "LaunchResult",
    "OldestFirstScheduler",
    "Profiler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "Segment",
    "SegmentTable",
    "SharedMemory",
    "SpecRounds",
    "StackGPUMachine",
    "Thread",
    "ThreadState",
    "WARP_SIZE",
    "Warp",
    "WarpBatcher",
    "XorShift32",
    "classify_slots",
    "decode_program",
    "fastpath_disabled",
    "fastpath_enabled",
    "grid_sharding_enabled",
    "make_scheduler",
    "mix_seed",
    "segments_disabled",
    "segments_enabled",
    "set_fastpath",
    "set_segments",
    "set_soa",
    "set_soa_lanes",
    "set_spec",
    "set_warp_batch",
    "soa_available",
    "soa_disabled",
    "soa_enabled",
    "spec_disabled",
    "spec_enabled",
    "warp_batch_disabled",
    "warp_batch_enabled",
    "run_reference_launch",
    "run_reference_thread",
]
