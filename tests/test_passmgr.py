"""The pass manager: registry, pipelines, AnalysisManager, debug toolkit.

Pins the ISSUE 3 acceptance property directly: the AnalysisManager reuses
a cached divergence analysis across non-invalidating passes and
recomputes it after a CFG-mutating pass; and the four compile modes are
plain registered pipeline descriptions executed by the PassManager.
"""

import io
import json

import pytest

from repro import compile_kernel_source
from repro.core import (
    ALL_ANALYSES,
    MODE_PIPELINES,
    MODES,
    PASS_REGISTRY,
    AnalysisManager,
    Pass,
    PassContext,
    PassManager,
    PipelineError,
    ReconvergenceCompiler,
    bisect_pipeline,
    compile_cached,
    compile_sr,
    format_pipeline,
    list_passes,
    parse_pipeline,
    pipeline_for_mode,
    record_pipeline_trace,
)
from repro.core.program_cache import ProgramCache
from repro.errors import TransformError
from repro.ir.printer import format_module

from .helpers import diamond_function

PREDICTED = """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..6 {
        if (hash01(t * 13.0 + i) < 0.3) {
            label L1: acc = acc + 1.0;
        }
    }
    store(t, acc);
}
"""


def predicted_module():
    return compile_kernel_source(PREDICTED)


class TestPipelineParsing:
    def test_simple_list(self):
        specs = parse_pipeline("pdom-sync,allocate,verify")
        assert [s.name for s in specs] == ["pdom-sync", "allocate", "verify"]
        assert format_pipeline(specs) == "pdom-sync,allocate,verify"

    def test_options_and_positional(self):
        specs = parse_pipeline("deconflict[static],optimize[max-iterations=3]")
        assert specs[0].options_dict() == {"strategy": "static"}
        assert specs[1].options_dict() == {"max_iterations": 3}
        # Canonical form spells the positional option out.
        assert format_pipeline(specs) == (
            "deconflict[strategy=static],optimize[max-iterations=3]"
        )

    def test_unknown_pass_rejected_eagerly(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            parse_pipeline("pdom-sync,no-such-pass")

    def test_unknown_option_rejected(self):
        specs = parse_pipeline("allocate[budget=3]")
        with pytest.raises(PipelineError, match="unknown option"):
            PASS_REGISTRY.create(specs[0].name, specs[0].options_dict())

    def test_positional_on_optionless_pass_rejected(self):
        with pytest.raises(PipelineError, match="no positional option"):
            parse_pipeline("verify[fast]")

    def test_malformed(self):
        with pytest.raises(PipelineError):
            parse_pipeline("pdom-sync,[x]")
        with pytest.raises(PipelineError):
            parse_pipeline("deconflict[static")

    def test_empty_pipeline(self):
        assert parse_pipeline("") == []


class TestRegistry:
    def test_mode_pipelines_are_registered(self):
        # Acceptance: every compile mode is a registered pipeline description.
        for mode in MODES:
            description = pipeline_for_mode(mode)
            for spec in parse_pipeline(description):
                assert spec.name in PASS_REGISTRY

    def test_listing_is_deterministic_one_line_docs(self):
        listing = list_passes()
        lines = listing.splitlines()
        assert lines == sorted(lines)
        names = [line.split()[0] for line in lines]
        assert "pdom-sync" in names and "deconflict" in names
        assert listing == list_passes()

    def test_unknown_mode(self):
        with pytest.raises(TransformError, match="unknown compile mode"):
            pipeline_for_mode("turbo")


class TestAnalysisManager:
    def test_hit_then_recompute_after_mutation(self):
        module, fn = diamond_function()
        am = AnalysisManager(module)
        first = am.get("divergence")
        assert am.get("divergence") is first
        assert (am.hits, am.misses) == (1, 1)
        # Structural mutation (token safety net): drop a block's worth of
        # structure by renaming nothing but adding an instruction count
        # change via strip of the terminator — simplest: new function name
        # is too invasive; just mutate a block's instruction list.
        block = fn.blocks[0]
        block.instructions.append(block.instructions[-1])
        try:
            assert am.get("divergence") is not None
            assert am.misses == 2
        finally:
            block.instructions.pop()

    def test_invalidate_preserved_entries_survive(self):
        module, _ = diamond_function()
        am = AnalysisManager(module)
        am.get("divergence")
        am.get("cfg")
        am.invalidate(preserved={"divergence"})
        assert am.cached("divergence") is not None
        assert am.cached("cfg") is None
        assert am.invalidated == 1
        am.invalidate(preserved=ALL_ANALYSES)
        assert am.cached("divergence") is not None

    def test_unknown_analysis(self):
        module, _ = diamond_function()
        with pytest.raises(PipelineError, match="unknown analysis"):
            AnalysisManager(module).get("entropy")

    def test_reuse_across_non_invalidating_passes(self):
        # Acceptance criterion, end to end: pdom-sync preserves all
        # analyses, so a second pdom-sync reuses the cached divergence.
        program = ReconvergenceCompiler(allocate=False, verify=False).compile(
            predicted_module(), mode="sr",
            pipeline="pdom-sync,pdom-sync,strip-directives",
        )
        stats = program.report.analysis_stats
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_recompute_after_cfg_mutating_pass(self):
        # ...and a CFG-mutating pass (optimize merges blocks) in between
        # forces a recompute.
        program = ReconvergenceCompiler(allocate=False, verify=False).compile(
            predicted_module(), mode="sr",
            pipeline="pdom-sync,optimize,pdom-sync,strip-directives",
        )
        stats = program.report.analysis_stats
        assert stats["misses"] == 2
        assert stats["hits"] == 0
        assert stats["invalidated"] >= 1


class TestCompilerFacade:
    def test_mode_resolution_matches_legacy(self):
        # The façade's sr output is bit-identical to an explicit run of
        # the registered sr pipeline.
        module = predicted_module()
        by_mode = ReconvergenceCompiler().compile(module, mode="sr")
        explicit = ReconvergenceCompiler().compile(
            module, pipeline=pipeline_for_mode("sr")
        )
        assert format_module(by_mode.module) == format_module(explicit.module)
        assert by_mode.report.pipeline == explicit.report.pipeline

    def test_report_records_canonical_pipeline(self):
        program = ReconvergenceCompiler().compile(
            predicted_module(), mode="baseline"
        )
        assert program.report.pipeline == (
            "pdom-sync,strip-directives,mem-effects,allocate,verify"
        )

    def test_constructor_flags_shape_pipeline(self):
        compiler = ReconvergenceCompiler(
            optimize=True, allocate=False, verify=False
        )
        specs = compiler.resolve_pipeline("none")
        assert format_pipeline(specs) == "optimize,strip-directives,mem-effects"

    def test_env_pipeline_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "strip-directives,verify")
        program = ReconvergenceCompiler().compile(predicted_module(), mode="sr")
        assert program.report.pipeline == "strip-directives,verify"
        assert [s.name for s in program.report.spans] == [
            "strip-directives", "verify",
        ]

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(TransformError, match="unknown compile mode"):
            ReconvergenceCompiler().compile(predicted_module(), mode="bogus")

    def test_deconflict_strategy_option_overrides_compiler(self):
        program = ReconvergenceCompiler(deconfliction="dynamic").compile(
            predicted_module(), mode="sr",
            pipeline="collect-predictions,pdom-sync,sr-insert,"
                     "deconflict[static],strip-directives,allocate,verify",
        )
        assert all(
            r.strategy == "static"
            for r in program.report.deconfliction_reports
        )

    def test_mode_pipelines_cover_all_modes(self):
        assert set(MODE_PIPELINES) == set(MODES)


class TestDescribe:
    def test_describe_includes_pdom_and_auto(self):
        # Satellite: pdom_reports and auto_candidates used to be omitted.
        program = ReconvergenceCompiler().compile(
            predicted_module(), mode="auto",
            auto_options={"auto_threshold": 4},
        )
        text = program.report.describe()
        assert program.report.pdom_reports
        assert "pdom@k:" in text
        assert program.report.auto_candidates
        assert "auto: " in text

    def test_describe_lists_every_pdom_function(self):
        program = ReconvergenceCompiler().compile(
            predicted_module(), mode="baseline"
        )
        for name in program.report.pdom_reports:
            assert f"pdom@{name}:" in program.report.describe()

    def test_pdom_report_describe_no_divergence(self):
        module, _ = diamond_function(divergent=False)
        program = ReconvergenceCompiler().compile(module, mode="baseline")
        assert "no divergent branches" in program.report.pdom_reports["k"].describe()


class TestDebugToolkit:
    def test_stop_after(self):
        program = ReconvergenceCompiler(stop_after="pdom-sync").compile(
            predicted_module(), mode="sr"
        )
        names = [s.name for s in program.report.spans]
        assert names[-1] == "pdom-sync"
        assert "sr-insert" not in names
        # Predict directives are still present mid-compilation.
        assert any(
            instr.opcode.value == "predict"
            for fn in program.module
            for blk in fn.blocks
            for instr in blk.instructions
        )

    def test_print_after_all(self):
        stream = io.StringIO()
        manager = PassManager(
            "strip-directives,verify",
            print_after_all=True,
            print_stream=stream,
        )
        manager.run(predicted_module().clone())
        text = stream.getvalue()
        assert "; IR after strip-directives" in text
        assert "; IR after verify" in text
        assert "func @k" in text

    def test_verify_each_names_failing_pass(self):
        class BreakerPass(Pass):
            name = "breaker"
            description = "test-only: damages the module"

            def run(self, module, ctx):
                for fn in module:
                    fn.blocks[0].instructions.pop()  # drop the terminator
                    break

        PASS_REGISTRY._passes["breaker"] = BreakerPass
        try:
            manager = PassManager("breaker,verify", verify_each=True)
            with pytest.raises(TransformError, match="after pass 'breaker'"):
                manager.run(predicted_module().clone())
        finally:
            del PASS_REGISTRY._passes["breaker"]

    def test_env_flags(self, monkeypatch):
        monkeypatch.setenv("REPRO_STOP_AFTER", "pdom-sync")
        manager = PassManager("pdom-sync,allocate")
        assert manager.stop_after == "pdom-sync"
        monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
        assert PassManager("verify").verify_each is True

    def test_spans_cover_every_pass(self):
        program = compile_sr(predicted_module())
        span_names = [s.name for s in program.report.spans]
        for spec in parse_pipeline(program.report.pipeline):
            assert spec.name in span_names


class TestBisector:
    def test_trace_round_trips_through_json(self, tmp_path):
        module = predicted_module()
        pipeline = pipeline_for_mode("sr")
        trace = record_pipeline_trace(module, pipeline)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        golden = json.loads(path.read_text())
        assert not bisect_pipeline(module, pipeline, golden).divergent

    def test_finds_first_diverging_pass(self):
        module = predicted_module()
        golden = record_pipeline_trace(module, pipeline_for_mode("sr"))
        altered = (
            "collect-predictions,pdom-sync,sr-insert,"
            "deconflict[static],strip-directives,allocate,verify"
        )
        result = bisect_pipeline(module, altered, golden)
        assert result.divergent
        assert result.pass_index == 3
        assert "deconflict" in result.pass_name

    def test_reports_missing_and_extra_passes(self):
        module = predicted_module()
        golden = record_pipeline_trace(module, "strip-directives,allocate")
        shorter = bisect_pipeline(module, "strip-directives", golden)
        assert shorter.divergent and "missing-pass" in shorter.reason
        longer = bisect_pipeline(
            module, "strip-directives,allocate,verify,lint", golden
        )
        assert longer.divergent and "extra-pass" in longer.reason

    def test_ir_divergence_detected(self):
        module = predicted_module()
        golden = record_pipeline_trace(module, "pdom-sync,strip-directives")
        # Same pass names, different output: assume_all_divergent barriers
        # extra branches.
        result = bisect_pipeline(
            module,
            "pdom-sync[assume-all-divergent=true],strip-directives",
            golden,
        )
        assert result.divergent
        # The spec text differs too, so the mismatch is caught at pass 0.
        assert result.pass_index == 0


class TestProgramCachePipelineKeys:
    # Satellite: pipeline description / pass options are part of the key.

    def test_distinct_pipelines_distinct_entries(self):
        cache = ProgramCache()
        module = predicted_module()
        a = cache.compile(module, mode="sr")
        b = cache.compile(
            module, mode="sr",
            pipeline="collect-predictions,pdom-sync,sr-insert,"
                     "deconflict[static],strip-directives,allocate,verify",
        )
        assert cache.stats() == {"hits": 0, "misses": 2}
        assert a is not b

    def test_pass_option_changes_distinct_entries(self):
        cache = ProgramCache()
        module = predicted_module()
        cache.compile(module, pipeline="strip-directives,allocate")
        cache.compile(
            module, pipeline="strip-directives,allocate,verify"
        )
        assert cache.misses == 2

    def test_repeated_compile_hits(self):
        cache = ProgramCache()
        module = predicted_module()
        pipeline = "pdom-sync,strip-directives,allocate,verify"
        first = cache.compile(module, mode="baseline", pipeline=pipeline)
        second = cache.compile(module, mode="baseline", pipeline=pipeline)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_env_pipeline_distinguishes_entries(self, monkeypatch):
        cache = ProgramCache()
        module = predicted_module()
        cache.compile(module, mode="sr")
        monkeypatch.setenv("REPRO_PIPELINE", "strip-directives,verify")
        program = cache.compile(module, mode="sr")
        assert cache.misses == 2
        assert program.report.pipeline == "strip-directives,verify"
        monkeypatch.delenv("REPRO_PIPELINE")
        assert cache.compile(module, mode="sr").report.pipeline != (
            "strip-directives,verify"
        )
        assert cache.hits == 1

    def test_compile_cached_forwards_pipeline(self):
        program = compile_cached(
            predicted_module(), mode="sr", pipeline="strip-directives,verify"
        )
        assert program.report.pipeline == "strip-directives,verify"


class TestPassContext:
    def test_standalone_context_gets_report_and_namer(self):
        ctx = PassContext()
        assert ctx.report is not None
        assert ctx.namer is not None

    def test_pass_manager_runs_sr_pipeline_standalone(self):
        module = predicted_module().clone()
        ctx = PassContext(mode="sr")
        PassManager(pipeline_for_mode("sr")).run(module, ctx)
        assert ctx.report.predictions
        assert ctx.report.allocation
