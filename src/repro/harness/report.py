"""Plain-text rendering of experiment results (tables and bar rows).

The harness prints the same rows/series the paper's figures report; these
helpers keep the formatting consistent between the CLI, the benchmarks,
and EXPERIMENTS.md generation.
"""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Monospace table with column auto-sizing."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            columns[i].append(_format_cell(cell))
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for r, row in enumerate(rows):
        lines.append(
            "  ".join(
                _format_cell(cell).ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _format_cell(cell):
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_bar(value, scale=40, maximum=1.0, char="#"):
    """An ASCII bar for efficiency-style values in [0, maximum]."""
    filled = int(round(scale * min(value, maximum) / maximum))
    return char * filled


def efficiency_chart(rows, title=None):
    """Rows of (label, baseline_eff, optimized_eff) as paired ASCII bars
    (the Figure 7 layout)."""
    lines = [title] if title else []
    width = max((len(label) for label, *_ in rows), default=0)
    for label, base, opt in rows:
        lines.append(
            f"{label.ljust(width)}  base {base:5.1%} |{format_bar(base):40s}|"
        )
        lines.append(
            f"{''.ljust(width)}  +SR  {opt:5.1%} |{format_bar(opt):40s}|"
        )
    return "\n".join(lines)


def markdown_table(headers, rows):
    """GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
    return "\n".join(lines)
