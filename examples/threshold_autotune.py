#!/usr/bin/env python
"""Automatic soft-barrier threshold discovery.

The paper tunes thresholds by hand and leaves automation to future work
("We leave the problem of automatically discovering the ideal threshold
parameter for a particular problem to future work", Section 5.3). This
example runs the library's offline tuner over three workloads and shows
that it lands each one on its Figure 9 sweet spot.

Run: ``python examples/threshold_autotune.py``
"""

from repro.core import tune_workload
from repro.workloads import get_workload


def main():
    print(f"{'workload':12s} {'user choice':>12s} {'tuned':>6s} "
          f"{'speedup':>8s} {'evals':>6s}")
    for name in ("xsbench", "rsbench", "pathtracer"):
        workload = get_workload(name)
        result = tune_workload(workload)
        tuned = "hard" if result.best_threshold is None else result.best_threshold
        user = "hard" if workload.sr_threshold is None else workload.sr_threshold
        print(f"{name:12s} {str(user):>12s} {str(tuned):>6s} "
              f"{result.best_speedup:>7.2f}x {len(result.evaluations):>6d}")
    print("\nxsbench tunes low (expensive refill -> batch idle threads);")
    print("pathtracer tunes high (cheap refill -> wait for everyone).")


if __name__ == "__main__":
    main()
