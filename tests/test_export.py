"""JSON/CSV export tests."""

import json

from repro.harness.experiment import compare_all
from repro.harness.export import (
    collect_results,
    comparison_rows_to_dicts,
    main as export_main,
    to_csv,
)
from tests.test_workloads import FAST_PARAMS


class TestExport:
    def test_rows_to_dicts(self):
        rows = compare_all(["mcb"], params=FAST_PARAMS)
        dicts = comparison_rows_to_dicts(rows)
        assert dicts[0]["workload"] == "mcb"
        assert 0 < dicts[0]["baseline_eff"] <= 1

    def test_csv_roundtrip(self):
        rows = compare_all(["mcb"], params=FAST_PARAMS)
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,")
        assert lines[1].startswith("mcb,")

    def test_collect_results_serializable(self):
        results = collect_results(sweep_workloads=())
        text = json.dumps(results)
        parsed = json.loads(text)
        assert len(parsed["figure7_8"]) == 9

    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        assert export_main(["--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert "figure9" in data
        assert set(data["figure9"]) == {"pathtracer", "xsbench"}
