"""Section 4.3 ablation: static vs dynamic deconfliction."""

from repro.harness import deconfliction_ablation


def test_deconfliction_ablation(once):
    result = once(deconfliction_ablation)
    for name, dyn, stat, barrier_dyn, barrier_stat in result.data:
        # Static deconfliction executes fewer barrier instructions.
        assert barrier_stat <= barrier_dyn, name
    print("\n" + result.text)
