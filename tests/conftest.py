"""Shared pytest configuration.

``--update-goldens`` regenerates the golden-trace corpus under
``tests/goldens/`` instead of comparing against it (see
``tests/test_goldens.py``).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current simulator "
             "output instead of asserting against it",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")
