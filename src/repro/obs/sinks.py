"""Pluggable event sinks.

The simulator emits :mod:`repro.obs.events` into a sink. The default is
:data:`NULL_SINK`, whose ``enabled`` flag is ``False`` — every emission
site guards on that flag, so a disabled launch allocates no event objects
and pays one attribute check per issue.

Sinks receive *every* event kind (issues, divergence, barrier traffic,
reconvergence); the profiler's ``trace`` list, by contrast, keeps only
issue events for the legacy timeline API.

Sinks are **finalized** (``close()``) by the machine when a launch dies
mid-kernel, so file-backed sinks like :class:`JsonlSink` never lose the
partial trace leading up to a ``LaunchError``/deadlock.

The *ambient sink* (:func:`set_ambient_sink`/:func:`ambient_sink`) is a
process-global default consulted by machines constructed without an
explicit ``sink``. It exists for cross-process observability: the
parallel harness installs a collecting sink around a worker task so
``--jobs`` sweeps can stream their events back to the parent without
every call site threading a sink argument through. It is None (meaning
:data:`NULL_SINK`) unless something installs one.
"""

from __future__ import annotations

import json

__all__ = [
    "EventSink",
    "NullSink",
    "ListSink",
    "CallbackSink",
    "JsonlSink",
    "NULL_SINK",
    "ambient_sink",
    "set_ambient_sink",
]


class EventSink:
    """Receives simulator events; subclass and override :meth:`emit`."""

    #: emission sites skip event construction entirely when False
    enabled = True

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Flush/teardown hook; the default does nothing."""


class NullSink(EventSink):
    """Discards everything; ``enabled`` is False so nothing is built."""

    enabled = False

    def emit(self, event):  # pragma: no cover - guarded out by ``enabled``
        pass


#: Shared default instance (sinks are stateless unless they collect).
NULL_SINK = NullSink()


class ListSink(EventSink):
    """Collects events in memory (the trace CLI and tests use this)."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class CallbackSink(EventSink):
    """Forwards every event to a callable (streaming consumers)."""

    def __init__(self, fn):
        self._fn = fn

    def emit(self, event):
        self._fn(event)


class JsonlSink(EventSink):
    """Streams events to a file as JSON lines (one ``to_dict()`` per line).

    The machine closes the sink when a launch aborts, so the lines
    written up to the failure survive on disk — the whole point of a
    file-backed sink is the post-mortem partial trace.
    """

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w")
        self.emitted = 0
        self.closed = False

    def emit(self, event):
        payload = {"kind": event.kind}
        for key, value in event.to_dict().items():
            if isinstance(value, frozenset):
                value = sorted(value)
            elif isinstance(value, dict):
                value = {
                    str(k): sorted(v) if isinstance(v, frozenset) else v
                    for k, v in value.items()
                }
            payload[key] = getattr(value, "value", value)
        self._handle.write(json.dumps(payload) + "\n")
        self.emitted += 1

    def close(self):
        if not self.closed:
            self.closed = True
            self._handle.flush()
            self._handle.close()


#: Process-global default sink for machines built without an explicit one.
_AMBIENT_SINK = None


def ambient_sink():
    """The installed ambient sink, or None (machines then use NULL_SINK)."""
    return _AMBIENT_SINK


def set_ambient_sink(sink):
    """Install (or with None, remove) the ambient sink; returns previous."""
    global _AMBIENT_SINK
    previous = _AMBIENT_SINK
    _AMBIENT_SINK = sink
    return previous
