"""Machine-readable export of experiment results (JSON / CSV).

The figure generators return structured data; this module serializes it so
external tooling (plotting scripts, CI dashboards) can consume the
reproduction's measurements. ``python -m repro.harness.export`` writes one
JSON file with every fast figure.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys

from repro.harness.experiment import compare_all, threshold_sweep
from repro.obs import counters as obs_counters
from repro.workloads import FIGURE7_WORKLOADS, get_workload

#: Workloads whose full observability summary ships with the export, with
#: scaled-down sizes so the extra instrumented runs stay cheap.
SUMMARY_WORKLOADS = {
    "funccall": {"iterations": 12},
    "mcb": {"steps": 16},
}


def comparison_rows_to_dicts(rows):
    return [
        {
            "workload": r.workload,
            "pattern": r.pattern,
            "baseline_eff": r.baseline_eff,
            "sr_eff": r.sr_eff,
            "efficiency_gain": r.efficiency_gain,
            "baseline_cycles": r.baseline_cycles,
            "sr_cycles": r.sr_cycles,
            "speedup": r.speedup,
            "threshold": r.threshold,
            "checksum_ok": r.checksum_ok,
        }
        for r in rows
    ]


def sweep_to_dicts(baseline, points):
    return {
        "baseline": {
            "simt_efficiency": baseline.simt_efficiency,
            "cycles": baseline.cycles,
        },
        "points": [
            {
                "threshold": p.threshold,
                "simt_efficiency": p.simt_efficiency,
                "cycles": p.cycles,
                "speedup": p.speedup,
            }
            for p in points
        ],
    }


def collect_summaries(seed=2020, workloads=None):
    """Per-workload launch summaries with stall-reason attribution.

    Runs each workload under ``metrics=True`` and merges the profiler's
    ``summary()`` (issue counts, efficiency, per-opcode breakdown) with the
    stall/barrier attribution from :class:`repro.obs.LaunchMetrics`.
    """
    if workloads is None:
        workloads = SUMMARY_WORKLOADS
    summaries = {}
    for name, params in workloads.items():
        workload = get_workload(name, **params)
        result = workload.run(mode="sr", seed=seed, metrics=True)
        summary = result.launch.profiler.summary()
        summary["metrics"] = result.launch.metrics.summary()
        summaries[name] = summary
    return summaries


def collect_results(seed=2020, sweep_workloads=("pathtracer", "xsbench"),
                    summary_workloads=None, jobs=None):
    """All fast-figure measurements as one JSON-serializable dict."""
    before = obs_counters.snapshot()
    rows = compare_all(FIGURE7_WORKLOADS, seed=seed, jobs=jobs)
    sweeps = {}
    for name in sweep_workloads:
        baseline, points = threshold_sweep(name, seed=seed, jobs=jobs)
        sweeps[name] = sweep_to_dicts(baseline, points)
    summaries = collect_summaries(seed=seed, workloads=summary_workloads)
    return {
        "figure7_8": comparison_rows_to_dicts(rows),
        "figure9": sweeps,
        "summaries": summaries,
        # What the engine did to produce this export (repro.obs.counters):
        # cache traffic, fusion coverage, batch epochs, pool reuse.
        "engine_counters": obs_counters.delta(
            obs_counters.snapshot(), before
        ),
        "seed": seed,
    }


def summaries_to_csv(summaries):
    """Launch summaries as flat CSV rows (one row per workload × stall
    reason, plus an ``active`` row each)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload", "reason", "lane_cycles",
                     "simt_efficiency", "avg_active_lanes", "cycles"])
    for name, summary in summaries.items():
        metrics = summary.get("metrics", {})
        rows = {"active": metrics.get("active_lane_cycles", 0)}
        rows.update(summary.get("stall_cycles", {}))
        for reason, cycles in rows.items():
            writer.writerow([
                name, reason, cycles,
                f"{summary['simt_efficiency']:.6f}",
                f"{summary['avg_active_lanes']:.3f}",
                summary["cycles"],
            ])
    return buffer.getvalue()


def to_csv(rows):
    """Figure 7/8 rows as CSV text."""
    dicts = comparison_rows_to_dicts(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(dicts[0]))
    writer.writeheader()
    writer.writerows(dicts)
    return buffer.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default="results.json")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--summary-csv", default=None,
        help="also write the stall-attribution summaries as CSV",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweeps (default: $REPRO_JOBS or 1)",
    )
    args = parser.parse_args(argv)
    results = collect_results(seed=args.seed, jobs=args.jobs)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.output}")
    if args.summary_csv:
        with open(args.summary_csv, "w") as handle:
            handle.write(summaries_to_csv(results["summaries"]))
        print(f"wrote {args.summary_csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
