"""Golden-trace regression corpus.

Each file under ``tests/goldens/`` freezes one workload's complete
observable behaviour — per-thread store traces, retired-instruction
counts, cycles, SIMT efficiency, and issue counts — for both compile
modes at a fixed seed. Unlike the differential tests (which compare two
live configurations against each other), the goldens catch drift that
affects *every* configuration at once: a cost-model tweak, a compiler
pass reordering, an executor semantics change.

Regenerate deliberately after an intended behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and review the JSON diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from tests.test_conformance import (
    CORPUS,
    MODES,
    _compiled,
    _forced_soa_gate,
    _launch,
)
from repro.obs.counters import snapshot as counters_snapshot
from repro.simt import GPUMachine, set_soa, soa_available, soa_disabled
from repro.workloads import get_workload

GOLDEN_DIR = Path(__file__).parent / "goldens"
SEED = 2020


def _capture(name):
    """The JSON-serializable golden record for one workload."""
    workload = get_workload(name, **CORPUS[name])
    record = {
        "workload": name,
        "params": CORPUS[name],
        "seed": SEED,
        "modes": {},
    }
    for mode in MODES:
        compiled = _compiled(workload, mode)
        launch = _launch(workload, compiled, GPUMachine, None, seed=SEED)
        record["modes"][mode] = {
            "store_traces": {
                str(tid): [[addr, value] for addr, value in trace]
                for tid, trace in sorted(launch.store_traces().items())
            },
            "retired": {
                str(tid): n
                for tid, n in sorted(launch.retired_per_thread().items())
            },
            "cycles": launch.cycles,
            "simt_efficiency": launch.simt_efficiency,
            "issued": launch.profiler.issued,
            "barrier_issues": launch.profiler.barrier_issues,
        }
    return record


def _normalize(record):
    """Round-trip through JSON so tuple-vs-list and int-key differences
    between a fresh capture and a loaded golden can't mask (or fake) a
    mismatch."""
    return json.loads(json.dumps(record, sort_keys=True))


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_golden_traces(name, update_goldens):
    path = GOLDEN_DIR / f"{name}.json"
    record = _capture(name)
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden {path.name}; regenerate with --update-goldens"
    )
    golden = json.loads(path.read_text())
    assert _normalize(record) == golden, (
        f"{name} drifted from its golden trace; if the change is intended, "
        f"rerun with --update-goldens and review the diff"
    )


@pytest.mark.skipif(not soa_available(), reason="numpy not installed")
@pytest.mark.parametrize("name", sorted(CORPUS)[:3])
def test_golden_generation_soa_invariant(name):
    """``--update-goldens`` must produce byte-identical files whether or
    not the SoA vector layer is active — otherwise a contributor's local
    numpy install would silently rewrite the frozen corpus."""
    previous = set_soa(True)  # independent of any ambient REPRO_SOA=0
    try:
        with _forced_soa_gate():
            before = counters_snapshot()["soa.vector_chunks"]
            vector_record = _capture(name)
            engaged = counters_snapshot()["soa.vector_chunks"] - before
            with soa_disabled():
                scalar_record = _capture(name)
    finally:
        set_soa(previous)
    assert engaged > 0, "SoA never engaged; the invariance check is vacuous"

    def dump(record):
        return json.dumps(record, indent=2, sort_keys=True)

    assert dump(vector_record) == dump(scalar_record)


def test_goldens_cover_full_corpus():
    """Every corpus workload has a committed golden, and no stale goldens
    linger for workloads that left the corpus."""
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(CORPUS)
