"""Table 2: the benchmark inventory (builds + verifies every workload)."""

from repro.harness import table2
from repro.ir import verify_module
from repro.workloads import FIGURE7_WORKLOADS, get_workload


def test_table2(once):
    result = once(table2)
    assert len(result.data) == 9
    print("\n" + result.text)


def test_table2_all_workloads_build(benchmark):
    def build_all():
        modules = [get_workload(name).module() for name in FIGURE7_WORKLOADS]
        for module in modules:
            verify_module(module)
        return modules

    modules = benchmark.pedantic(build_all, rounds=1, iterations=1)
    assert len(modules) == 9
