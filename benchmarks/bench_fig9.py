"""Figure 9: soft-barrier threshold sweeps for PathTracer and XSBench."""

from repro.harness import figure9


def test_figure9(once):
    result = once(figure9)
    _, pt_points = result.data["pathtracer"]
    _, xs_points = result.data["xsbench"]
    pt_best = max(pt_points, key=lambda p: p.speedup)
    xs_best = max(xs_points, key=lambda p: p.speedup)
    # PathTracer peaks at full reconvergence; XSBench at a low threshold.
    assert pt_best.threshold >= 24
    assert xs_best.threshold <= 16
    print("\n" + result.text)
