"""GPU-MCML: photon transport in turbid media (Table 2).

"A benchmark that simulates photon transport" — Monte Carlo modeling of
light in layered tissue. Each photon performs hop/drop/spin steps (SFU-
heavy direction sampling) until roulette kills it; surviving a roulette is
rare but boosts the photon weight, so a few photons live far longer than
the rest — the heavy tail that makes the PDOM baseline so inefficient here
(gpu-mcml shows among the largest efficiency gains in Figure 7).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class GPUMcml(Workload):
    name = "gpu-mcml"
    description = (
        "Photon transport in turbid media (MCML); hop/drop/spin loop with "
        "roulette survival gives very heavy-tailed photon lifetimes"
    )
    pattern = "loop-merge"
    paper_note = "Highly variable inner-loop trip counts (Section 5.2)."
    kernel_name = "mcml_photon"
    sr_threshold = None
    defaults = {
        "photons_per_thread": 6,
        "max_steps": 64,
        "roulette_weight": 0.05,
        "survive_prob": 0.12,
        "spin_cost": 16,
    }

    def source(self):
        p = self.params
        spin = repeat_lines("mu = fma(mu, 0.98, cos(mu) * 0.02);", p["spin_cost"] // 2)
        drop = repeat_lines("absorbed = fma(weight, 0.01, absorbed);", p["spin_cost"] - p["spin_cost"] // 2)
        return f"""
kernel mcml_photon(n_photons, layers) {{
    let photon = tid();
    let absorbed = 0.0;
    predict L1;
    while (photon < n_photons) {{
        // Prolog: launch the photon.
        let weight = 1.0;
        let mu = 0.9;
        let step = 0;
        let alive = 1;
        while (alive > 0) {{
            // Proposed reconvergence point: one hop/drop/spin step.
            label L1: step = step + 1;
            let u = hash01(photon * 419.0 + step * 101.0);
            let hop = 0.0 - log(u + 0.0001);
            weight = weight * exp(0.0 - hop * 0.1);
{spin}
{drop}
            if (weight < {p['roulette_weight']}) {{
                // Russian roulette: a few photons survive with boosted
                // weight and keep going (the heavy tail).
                let v = hash01(photon * 733.0 + step * 13.0);
                if (v < {p['survive_prob']}) {{
                    weight = weight / {p['survive_prob']};
                }} else {{
                    alive = 0;
                }}
            }}
            if (step >= {p['max_steps']}) {{
                alive = 0;
            }}
        }}
        photon = photon + 32;
    }}
    store(layers + tid(), absorbed);
}}
"""

    def setup(self, memory):
        layers = memory.alloc(self.n_threads, name="layers")
        n_photons = self.params["photons_per_thread"] * self.n_threads
        return (n_photons, layers)
