"""Speculative rounds: planner, rollback, adaptive backoff, escape hatches.

The conformance matrix (tests/test_conformance.py) pins the speculative
engine bit-identical to the serial interleaving over the full corpus and
under the atomics fuzzer; this file covers the pieces in isolation:

* the pure planning helpers — the virtual-group automaton's cut points
  and the coalescer's group-id fusing boundary;
* round engagement on real launches: divergent disjoint kernels commit,
  shared-cell kernels conflict and roll back *exactly*, and the deferred
  accounting matches the serial profile;
* the adaptive round-size controller at its boundaries (growth cap,
  backoff floor, the launch-wide disable, streak resets), driven
  deterministically through scripted round outcomes;
* every escape hatch: machine parameter, global knob, context manager,
  single warp, and schedulers that cannot be snapshotted.
"""

import pytest

from repro.core import compile_baseline
from repro.frontend import compile_kernel_source
from repro.ir.instructions import Opcode
from repro.obs.counters import ENGINE_COUNTERS
from repro.simt import (
    GPUMachine,
    GlobalMemory,
    set_spec,
    spec_disabled,
    spec_enabled,
)
from repro.simt import spec as spec_mod
from repro.simt.scheduler import SCHEDULERS, SchedulerBase
from repro.simt.spec import (
    SpecRounds,
    _BACKOFF_AFTER,
    _DISABLE_AFTER,
    _GROW_AFTER,
    _MAX_ROUND_SLOTS,
    _MIN_ROUND_SLOTS,
    _START_ROUND_SLOTS,
    _coalesce,
    _plan_warp,
    make_spec,
)

# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

#: Warp-divergent data-dependent branches over disjoint tid-strided
#: stores: non-forced picks every iteration, conflict-free footprints.
DIVERGENT = """
kernel k(out) {
    let t = tid();
    let acc = 0.0;
    let i = 0.0;
    while (i < 6.0) {
        if (hash01(t * 13.0 + i) < 0.5) {
            acc = fma(acc, 1.01, 1.0);
            acc = fma(acc, 1.01, 1.0);
            acc = fma(acc, 1.01, 1.0);
            acc = fma(acc, 1.01, 1.0);
        } else {
            acc = acc + 2.0;
            acc = acc * 1.5;
        }
        i = i + 1.0;
    }
    store(out + t, acc);
}
"""

#: The same divergent shape but every path bumps one shared counter:
#: rounds must conflict across warps and roll back exactly.
SHARED = """
kernel k(counter, out) {
    let t = tid();
    let acc = 0.0;
    let i = 0.0;
    while (i < 6.0) {
        if (hash01(t * 13.0 + i) < 0.5) {
            acc = acc + atomadd(counter, 1);
            acc = fma(acc, 1.01, 1.0);
        } else {
            acc = acc + atomadd(counter, 1);
            acc = acc * 1.5;
        }
        i = i + 1.0;
    }
    store(out + t, acc);
}
"""


def _run(source, n_args, n_threads=96, **machine_kwargs):
    module = compile_baseline(compile_kernel_source(source)).module
    memory = GlobalMemory()
    if n_args == 1:
        args = (memory.alloc(n_threads, name="out"),)
    else:
        args = (
            memory.alloc(1, name="counter"),
            memory.alloc(n_threads, name="out"),
        )
    machine = GPUMachine(module, **machine_kwargs)
    return machine.launch("k", n_threads, args=args, memory=memory)


def _fingerprint(launch):
    summary = launch.profiler.summary()
    # Engine telemetry legitimately differs between the speculative and
    # the serial configuration; results must not.
    summary.pop("counters", None)
    summary.pop("nonforced_picks", None)
    return (
        launch.store_traces(),
        launch.retired_per_thread(),
        summary,
        launch.cycles,
    )


# ----------------------------------------------------------------------
# Pure planning helpers
# ----------------------------------------------------------------------

class _Ns:
    def __init__(self, **kw):
        self.__dict__.update(kw)


class _Seg:
    def __init__(self, n):
        self.n = n


def _entry(opcode):
    return _Ns(opcode=opcode)


class TestPlanWarp:
    """The virtual-group automaton: cut points and merge bookkeeping."""

    def _plan(self, entries, groups, limit=16):
        def entry_at(pc):
            return entries[pc]

        def cursor(vgroups, program_order, slot):
            # Deterministic single-policy stand-in: lowest block index.
            return min(vgroups, key=lambda pc: pc[2])

        return _plan_warp(
            groups, cursor, lambda pc: pc[2], entry_at, limit
        )

    def test_cuts_at_first_non_fusable_opcode(self):
        entries = {
            ("k", "b", 0): _entry(Opcode.FMA),
            ("k", "b", 1): _entry(Opcode.ADD),
            ("k", "b", 2): _entry(Opcode.CALL),  # never planned past
            ("k", "b", 3): _entry(Opcode.MUL),
        }
        groups = {("k", "b", 0): [_Ns(lane=0)]}
        picks = self._plan(entries, groups)
        assert [(pc, e.opcode) for pc, e, _gid in picks] == [
            (("k", "b", 0), Opcode.FMA),
            (("k", "b", 1), Opcode.ADD),
        ]

    def test_cuts_at_the_limit(self):
        entries = {
            ("k", "b", i): _entry(Opcode.FMA) for i in range(8)
        }
        groups = {("k", "b", 0): [_Ns(lane=0)]}
        assert len(self._plan(entries, groups, limit=3)) == 3

    def test_merge_assigns_a_fresh_group_id(self):
        """A bucket falling through onto a resident bucket merges with a
        group id neither had, so the coalescer cannot fuse across the
        point where the serial path re-sorts the lanes."""
        entries = {
            ("k", "b", 0): _entry(Opcode.FMA),
            ("k", "b", 1): _entry(Opcode.ADD),
            ("k", "b", 2): _entry(Opcode.MUL),
        }
        groups = {
            ("k", "b", 0): [_Ns(lane=4)],
            ("k", "b", 1): [_Ns(lane=0)],
        }
        picks = self._plan(entries, groups, limit=2)
        assert [pc for pc, _e, _g in picks] == [
            ("k", "b", 0), ("k", "b", 1),
        ]
        gid_first, gid_merged = picks[0][2], picks[1][2]
        assert gid_merged != gid_first

    def test_empty_plan_when_first_pick_is_non_fusable(self):
        entries = {("k", "b", 0): _entry(Opcode.EXIT)}
        groups = {("k", "b", 0): [_Ns(lane=0)]}
        assert self._plan(entries, groups) == []


class TestCoalesce:
    def test_contiguous_same_group_run_fuses(self):
        picks = [
            (("k", "b", 0), "e0", 0),
            (("k", "b", 1), "e1", 0),
            (("k", "b", 2), "e2", 0),
        ]
        steps = _coalesce(picks, 3, lambda pc, run: _Seg(run))
        assert len(steps) == 1
        segment, pc, entry = steps[0]
        assert (segment.n, pc, entry) == (3, ("k", "b", 0), None)

    def test_group_id_change_ends_the_run(self):
        picks = [
            (("k", "b", 0), "e0", 0),
            (("k", "b", 1), "e1", 0),
            (("k", "b", 2), "e2", 7),  # merged: fresh gid
        ]
        steps = _coalesce(picks, 3, lambda pc, run: _Seg(run))
        assert [
            (s.n if s else None, pc, e) for s, pc, e in steps
        ] == [(2, ("k", "b", 0), None), (None, ("k", "b", 2), "e2")]

    def test_non_contiguous_pcs_issue_per_slot(self):
        picks = [
            (("k", "b", 0), "e0", 0),
            (("k", "c", 0), "e1", 0),  # different block: no run
        ]
        steps = _coalesce(picks, 2, lambda pc, run: _Seg(run))
        assert [s for s, _pc, _e in steps] == [None, None]

    def test_unfusable_run_falls_back_per_slot(self):
        """segment_bounded declining a run (no table entry) must not
        drop slots — each issues through its decoded entry."""
        picks = [
            (("k", "b", 0), "e0", 0),
            (("k", "b", 1), "e1", 0),
        ]
        steps = _coalesce(picks, 2, lambda pc, run: None)
        assert [(s, e) for s, _pc, e in steps] == [
            (None, "e0"), (None, "e1"),
        ]


# ----------------------------------------------------------------------
# Round engagement on real launches
# ----------------------------------------------------------------------

def _eager_pacing(monkeypatch):
    """Pin the attempt-pacing knobs so tiny test launches attempt (and
    run) a round at every opportunity. The post-failure cooldown and the
    profitability floors exist to keep speculation from losing time on
    real sweeps; the subjects here are engagement and rollback
    semantics, which the pacing would otherwise starve on kernels whose
    fusable runs are only a few slots long."""
    monkeypatch.setattr(spec_mod, "_PLAN_COOLDOWN", 0)
    monkeypatch.setattr(spec_mod, "_MIN_COMMIT_SLOTS", 2)
    monkeypatch.setattr(spec_mod, "_MIN_GUARDED_SLOTS", 2)
    monkeypatch.setattr(spec_mod, "_PER_SLOT_WEIGHT", 0)


class TestRoundEngagement:
    def test_divergent_rounds_commit_and_match_serial(self, monkeypatch):
        _eager_pacing(monkeypatch)
        for scheduler in sorted(SCHEDULERS):
            serial = _run(DIVERGENT, 1, scheduler=scheduler, spec=False)
            speculative = _run(DIVERGENT, 1, scheduler=scheduler, spec=True)
            assert _fingerprint(speculative) == _fingerprint(serial), (
                scheduler
            )
            assert serial.profiler.spec_rounds == 0
            assert speculative.profiler.spec_rounds > 0, scheduler
            assert speculative.profiler.spec_committed > 0, scheduler
            # Disjoint tid-strided footprints: nothing may conflict.
            assert speculative.profiler.spec_retries == 0, scheduler
            assert speculative.profiler.spec_rolled_back == 0, scheduler

    def test_shared_cell_conflicts_roll_back_exactly(self, monkeypatch):
        """Cross-warp atomics on one counter force real round conflicts;
        the rollback must be exact — the speculative launch reproduces
        the serial fetched-ticket sequence bit-for-bit. Pacing is pinned
        eager so this tiny launch attempts a round at every opportunity
        — the subject here is rollback exactness, not attempt pacing."""
        _eager_pacing(monkeypatch)
        serial = _run(SHARED, 2, spec=False)
        speculative = _run(SHARED, 2, spec=True)
        assert _fingerprint(speculative) == _fingerprint(serial)
        profiler = speculative.profiler
        assert profiler.spec_retries > 0
        assert profiler.spec_rolled_back > 0
        assert profiler.spec_replayed_slots > 0
        # The shared cell lands in the round footprint.
        assert profiler.spec_peak_footprint > 0

    def test_conflict_streaks_shrink_the_round(self, monkeypatch):
        _eager_pacing(monkeypatch)
        speculative = _run(SHARED, 2, spec=True)
        assert speculative.profiler.spec_backoffs > 0

    def test_deferred_accounting_matches_serial_per_warp(self, monkeypatch):
        _eager_pacing(monkeypatch)
        serial = _run(DIVERGENT, 1, spec=False)
        speculative = _run(DIVERGENT, 1, spec=True)
        assert speculative.profiler.spec_rounds > 0
        assert (
            speculative.profiler.warp_cycles == serial.profiler.warp_cycles
        )
        serial_blocks = serial.profiler.block_profiles
        spec_blocks = speculative.profiler.block_profiles
        assert set(spec_blocks) == set(serial_blocks)
        for key, expect in serial_blocks.items():
            got = spec_blocks[key]
            assert (got.issues, got.active_sum, got.visits, got.cycles) == (
                expect.issues, expect.active_sum, expect.visits,
                expect.cycles,
            ), key


# ----------------------------------------------------------------------
# Adaptive round-size controller
# ----------------------------------------------------------------------

def _scripted_spec(monkeypatch, outcomes):
    """A SpecRounds whose planning always fills the round and whose
    execution outcome is scripted: each try_round pops one bool from
    ``outcomes`` (True = committed, False = conflicted). Only the
    adaptive controller runs for real."""
    profiler = _Ns(
        spec_rounds=0, spec_committed=0, spec_retries=0, spec_backoffs=0,
        spec_rolled_back=0, spec_replayed_slots=0, spec_peak_footprint=0,
    )
    decoded = _Ns(segment_bounded=lambda pc, n: None, entry=lambda pc: None)
    executor = _Ns(
        profiler=profiler, _decoded=decoded, program_order=lambda pc: 0,
    )
    machine = _Ns(spec=None, max_issues=10 ** 9, _recorder=None)
    scheduler = _Ns(
        spec_cursor=lambda n, j: (lambda vg, po, s: None),
        spec_plan_token=lambda n, j: 0,
        consume=lambda n: None,
    )
    spec = SpecRounds(machine, executor, scheduler)
    monkeypatch.setattr(
        spec_mod, "_plan_warp",
        lambda groups, cursor, order, entry, limit: [(None, None, 0)] * limit,
    )
    monkeypatch.setattr(spec_mod, "_coalesce", lambda p, n, s: [])
    # The post-failure cooldown throttles real launches; the controller
    # tests want every scripted outcome to be one attempted round.
    monkeypatch.setattr(spec_mod, "_PLAN_COOLDOWN", 0)
    monkeypatch.setattr(
        SpecRounds, "_execute_round",
        lambda self, warps, steps, length: outcomes.pop(0),
    )
    warps = [_Ns(groups_cache={"pc": [_Ns(lane=0)]}) for _ in range(2)]
    return spec, warps


class TestRoundSizeController:
    def test_growth_doubles_and_caps(self, monkeypatch):
        rounds = 3 * _GROW_AFTER
        spec, warps = _scripted_spec(monkeypatch, [True] * rounds)
        sizes = []
        for _ in range(rounds):
            assert spec.try_round(warps, 0) is not None
            sizes.append(spec.round_size)
        assert spec.round_size == _MAX_ROUND_SLOTS
        assert sizes[_GROW_AFTER - 1] == 2 * _START_ROUND_SLOTS
        assert max(sizes) == _MAX_ROUND_SLOTS

    def test_backoff_halves_to_the_floor(self, monkeypatch):
        # Halvings from the start size down to the floor, each costing
        # a full conflict streak.
        halvings = 0
        size = _START_ROUND_SLOTS
        while size > _MIN_ROUND_SLOTS:
            size //= 2
            halvings += 1
        conflicts = halvings * _BACKOFF_AFTER
        spec, warps = _scripted_spec(monkeypatch, [False] * conflicts)
        for _ in range(conflicts):
            assert spec.try_round(warps, 0) is None
        assert spec.round_size == _MIN_ROUND_SLOTS
        assert spec.profiler.spec_backoffs == halvings
        assert spec.enabled

    def test_persistent_floor_conflicts_disable_the_launch(self, monkeypatch):
        halvings = 2  # 16 -> 8 -> 4 with the shipped constants
        conflicts = halvings * _BACKOFF_AFTER + _DISABLE_AFTER
        spec, warps = _scripted_spec(monkeypatch, [False] * (conflicts + 1))
        before = ENGINE_COUNTERS.spec_disables
        for _ in range(conflicts):
            assert spec.try_round(warps, 0) is None
        assert not spec.enabled
        assert ENGINE_COUNTERS.spec_disables == before + 1
        # Disabled: no further round is attempted (outcome not consumed).
        assert spec.try_round(warps, 0) is None
        assert spec.profiler.spec_rounds == conflicts

    def test_commit_resets_the_conflict_streak(self, monkeypatch):
        # Alternate conflict/commit forever: the streak never reaches
        # _BACKOFF_AFTER, so the round size never shrinks.
        outcomes = [False, True] * (2 * _DISABLE_AFTER)
        spec, warps = _scripted_spec(monkeypatch, outcomes)
        for _ in range(len(outcomes)):
            spec.try_round(warps, 0)
        assert spec.round_size >= _START_ROUND_SLOTS
        assert spec.profiler.spec_backoffs == 0
        assert spec.enabled


# ----------------------------------------------------------------------
# Escape hatches
# ----------------------------------------------------------------------

class TestEscapeHatches:
    def test_machine_parameter_disables(self):
        launch = _run(DIVERGENT, 1, spec=False)
        assert launch.profiler.spec_rounds == 0

    def test_context_manager_disables_default(self):
        assert spec_enabled()
        with spec_disabled():
            assert not spec_enabled()
            launch = _run(DIVERGENT, 1)
        assert spec_enabled()
        assert launch.profiler.spec_rounds == 0

    def test_machine_parameter_overrides_global_default(self, monkeypatch):
        _eager_pacing(monkeypatch)
        with spec_disabled():
            launch = _run(DIVERGENT, 1, spec=True)
        assert launch.profiler.spec_rounds > 0

    def test_set_spec_returns_previous(self):
        previous = set_spec(False)
        try:
            assert previous is True
            assert set_spec(True) is False
        finally:
            set_spec(True)

    def test_single_warp_never_speculates(self):
        launch = _run(DIVERGENT, 1, n_threads=32, spec=True)
        assert launch.profiler.spec_rounds == 0

    def test_base_scheduler_cannot_be_snapshotted(self):
        assert SchedulerBase().spec_cursor(2, 0) is None

    def test_make_spec_requires_a_snapshot_cursor(self):
        executor = _Ns(segment_at=object())
        machine = _Ns(spec=True)
        assert (
            make_spec(machine, executor, SchedulerBase(), "k", (), 96)
            is None
        )

    def test_make_spec_requires_a_segment_engine(self):
        machine = _Ns(spec=True)
        executor = _Ns(segment_at=None)
        scheduler = _Ns(spec_cursor=lambda n, j: (lambda vg, po, s: None))
        assert make_spec(machine, executor, scheduler, "k", (), 96) is None
