"""Execution-timeline rendering tests (the Figure 1 diagrams)."""

import pytest

from repro.core import compile_baseline, compile_sr
from repro.errors import ReproError
from repro.frontend import compile_kernel_source
from repro.harness.timeline import (
    assign_symbols,
    convergence_series,
    render_timeline,
)
from repro.simt import GPUMachine


def _traced_launch(program_module, n=32, args=(), **kwargs):
    return GPUMachine(program_module, trace=True, **kwargs).launch(
        program_module.kernels()[0].name, n, args=args
    )


KERNEL = """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..12 {
        if (hash01(t * 13.0 + i) < 0.25) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""


class TestTracing:
    def test_trace_disabled_by_default(self):
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        launch = GPUMachine(module).launch("k", 4)
        assert launch.profiler.trace is None

    def test_trace_records_every_issue(self):
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        launch = _traced_launch(module, n=4)
        assert len(launch.profiler.trace) == launch.profiler.issued

    def test_trace_lanes_match_active(self):
        module = compile_kernel_source(
            "kernel k() { if (tid() < 2) { store(0, 1.0); } }"
        )
        launch = _traced_launch(module, n=4)
        sizes = [len(lanes) for _, _, _, lanes in launch.profiler.trace]
        assert 2 in sizes  # the divergent store ran with two lanes


class TestRendering:
    def test_requires_trace(self):
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        launch = GPUMachine(module).launch("k", 4)
        with pytest.raises(ReproError, match="trace"):
            render_timeline(launch)

    def test_renders_one_row_per_lane(self):
        module = compile_baseline(compile_kernel_source(KERNEL)).module
        launch = _traced_launch(module)
        text = render_timeline(launch, width=40, legend=False)
        assert len(text.splitlines()) == 32
        assert text.splitlines()[0].startswith("T00 |")

    def test_highlight_symbol(self):
        module = compile_sr(compile_kernel_source(KERNEL)).module
        launch = _traced_launch(module)
        text = render_timeline(launch, width=60, highlight="L.L1", legend=True)
        assert "#" in text
        assert "# = L.L1" in text

    def test_legend_lists_blocks(self):
        module = compile_baseline(compile_kernel_source(KERNEL)).module
        launch = _traced_launch(module)
        text = render_timeline(launch, width=30)
        assert "for.head" in text

    def test_symbols_stable(self):
        trace = [(0, "k", "a", frozenset()), (0, "k", "b", frozenset())]
        symbols = assign_symbols(trace, highlight="b")
        assert symbols["b"] == "#"
        assert symbols["a"] == "A"


DELAY_KERNEL = """
kernel k() {
    let t = tid();
    if (t < 1) {
        delay(60);
    }
    store(t, 1.0);
}
"""


class _FakeProfiler:
    def __init__(self, trace):
        self.trace = trace


class _FakeLaunch:
    def __init__(self, trace):
        self.profiler = _FakeProfiler(trace)


class TestCycleAccurateRendering:
    def _delay_launch(self):
        module = compile_baseline(compile_kernel_source(DELAY_KERNEL)).module
        return _traced_launch(module, n=32)

    def _delay_block(self, launch):
        event = max(launch.profiler.trace, key=lambda e: e.dur)
        assert event.dur == 60
        return event.block

    def test_expensive_instruction_gets_proportional_width(self):
        launch = self._delay_launch()
        block = self._delay_block(launch)
        accurate = render_timeline(
            launch, width=60, highlight=block, legend=False, by_cycles=True
        )
        slotted = render_timeline(
            launch, width=60, highlight=block, legend=False, by_cycles=False
        )
        # The 60-cycle delay dominates lane 0's wall clock, so it must
        # span far more columns than the one issue slot it occupies.
        assert accurate.count("#") > slotted.count("#")
        assert slotted.count("#") >= 1

    def test_legend_unit_cycles_for_event_traces(self):
        launch = self._delay_launch()
        text = render_timeline(launch, width=40)
        assert "cycles" in text
        assert "issue slots" not in text

    def test_legend_unit_issue_slots_for_legacy_tuples(self):
        trace = [
            (0, "k", "entry", frozenset(range(4))),
            (0, "k", "entry", frozenset(range(4))),
            (0, "k", "exit", frozenset(range(4))),
        ]
        text = render_timeline(_FakeLaunch(trace), width=3, lanes=4)
        assert "issue slots" in text

    def test_by_cycles_on_legacy_tuples_rejected(self):
        trace = [(0, "k", "entry", frozenset({0}))]
        with pytest.raises(ReproError, match="cycle-stamped"):
            render_timeline(_FakeLaunch(trace), by_cycles=True, lanes=1)

    def test_auto_falls_back_for_legacy_tuples(self):
        trace = [(0, "k", "entry", frozenset({0, 1}))]
        text = render_timeline(_FakeLaunch(trace), lanes=2, legend=False)
        assert text.splitlines()[0].startswith("T00 |")


class TestConvergenceSeries:
    def test_sr_waves_wider_than_pdom(self):
        module = compile_kernel_source(KERNEL)
        base = _traced_launch(compile_baseline(module).module)
        sr = _traced_launch(compile_sr(module).module)
        base_waves = convergence_series(base, "L.L1")
        sr_waves = convergence_series(sr, "L.L1")
        assert max(sr_waves) > max(base_waves)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(sr_waves) > mean(base_waves)

    def test_unknown_block_empty(self):
        module = compile_baseline(compile_kernel_source(KERNEL)).module
        launch = _traced_launch(module)
        assert convergence_series(launch, "ghost") == []
