"""IR structural verifier.

Checks, per function:

* every block ends with exactly one terminator, and terminators appear only
  at block ends;
* branch targets and callees resolve;
* instruction operand shapes match their opcodes (arity, operand kinds);
* registers are defined before use on every path (conservative: a register
  must be defined on *some* path; strict mode requires all paths);
* barrier operands are barriers or registers.

The verifier is used by tests and by the pass pipeline after each transform.
"""

from __future__ import annotations

from repro.errors import VerifierError
from repro.ir.instructions import (
    BARRIER_OPS,
    BINARY_OPS,
    HAS_DST,
    UNARY_OPS,
    Barrier,
    BlockRef,
    FuncRef,
    Opcode,
    Reg,
)

#: Expected operand count per opcode; None means variadic/special-cased.
_ARITY = {
    Opcode.CONST: 1,
    Opcode.SEL: 3,
    Opcode.FMA: 3,
    Opcode.TID: 0,
    Opcode.LANE: 0,
    Opcode.WARPID: 0,
    Opcode.RAND: 0,
    Opcode.CTAID: 0,
    Opcode.CTADIM: 0,
    Opcode.NCTA: 0,
    Opcode.LD: 1,
    Opcode.ST: 2,
    Opcode.ATOMADD: 2,
    Opcode.SHLD: 1,
    Opcode.SHST: 2,
    Opcode.SHATOM: 2,
    Opcode.BRA: 1,
    Opcode.CBR: 3,
    Opcode.RET: None,
    Opcode.EXIT: 0,
    Opcode.CALL: None,
    Opcode.BSSY: 1,
    Opcode.BSYNC: 1,
    Opcode.BSYNCSOFT: 2,
    Opcode.BBREAK: 1,
    Opcode.BMOV: 1,
    Opcode.BARCNT: 1,
    Opcode.PREDICT: None,
    Opcode.WARPSYNC: 0,
    Opcode.CTASYNC: 0,
    Opcode.NOP: 0,
    Opcode.DELAY: 1,
}


def _fail(function, block, message):
    where = f"@{function.name}"
    if block is not None:
        where += f"/{block.name}"
    raise VerifierError(f"{where}: {message}")


def _check_operand_shapes(function, block, instr):
    opcode = instr.opcode
    if opcode in BINARY_OPS:
        expected = 2
    elif opcode in UNARY_OPS:
        expected = 1
    else:
        expected = _ARITY.get(opcode)
    if expected is not None and len(instr.operands) != expected:
        _fail(
            function,
            block,
            f"{opcode.value} expects {expected} operands, "
            f"got {len(instr.operands)}: {instr!r}",
        )
    if opcode is Opcode.RET and len(instr.operands) > 1:
        _fail(function, block, f"ret takes at most one operand: {instr!r}")
    if opcode is Opcode.CALL:
        if not instr.operands or not isinstance(instr.operands[0], FuncRef):
            _fail(function, block, f"call must name a function: {instr!r}")
    if opcode is Opcode.BRA and not isinstance(instr.operands[0], BlockRef):
        _fail(function, block, f"bra target must be a block: {instr!r}")
    if opcode is Opcode.CBR:
        if not isinstance(instr.operands[1], BlockRef) or not isinstance(
            instr.operands[2], BlockRef
        ):
            _fail(function, block, f"cbr targets must be blocks: {instr!r}")
    if opcode in BARRIER_OPS or opcode is Opcode.BMOV:
        bar = instr.operands[0] if instr.operands else None
        if not isinstance(bar, (Barrier, Reg)):
            _fail(
                function,
                block,
                f"{opcode.value} needs a barrier or barrier register: {instr!r}",
            )
    has_dst = instr.dst is not None
    wants_dst = opcode in HAS_DST or opcode is Opcode.BMOV
    if opcode is Opcode.CALL:
        pass  # call dst optional
    elif has_dst and not wants_dst:
        _fail(function, block, f"{opcode.value} must not define a register")
    elif wants_dst and not has_dst:
        _fail(function, block, f"{opcode.value} must define a register: {instr!r}")


def _check_terminators(function):
    for block in function.blocks:
        if not block.instructions:
            _fail(function, block, "empty block (no terminator)")
        for index, instr in enumerate(block.instructions):
            last = index == len(block.instructions) - 1
            if instr.is_terminator and not last:
                _fail(
                    function,
                    block,
                    f"terminator {instr.opcode.value} not at block end",
                )
            if last and not instr.is_terminator:
                _fail(function, block, "block does not end in a terminator")


def _check_targets(function, module):
    known = {block.name for block in function.blocks}
    for block in function.blocks:
        for instr in block:
            for target in instr.block_targets():
                if target not in known:
                    _fail(function, block, f"branch to unknown block ^{target}")
            if instr.opcode is Opcode.CALL and module is not None:
                callee = instr.operands[0].name
                if callee not in module.functions:
                    _fail(function, block, f"call to unknown function @{callee}")


def _must_defined_in(function):
    """Forward must-defined analysis: IN[b] = ∩ OUT[preds], optimistic init."""
    preds = function.predecessors()
    params = set(function.params)
    universe = set(function.all_registers()) | params
    gen = {}
    for block in function.blocks:
        defs = set()
        for instr in block:
            defs.update(instr.defs())
        gen[block.name] = defs
    defined_out = {block.name: set(universe) for block in function.blocks}
    defined_out[function.entry.name] = params | gen[function.entry.name]
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            name = block.name
            if name == function.entry.name:
                live_in = set(params)
            else:
                incoming = [defined_out[p] for p in preds[name]]
                if incoming:
                    live_in = set(incoming[0])
                    for s in incoming[1:]:
                        live_in &= s
                    live_in |= params
                else:
                    live_in = set(params)  # unreachable block: be lenient
            new_out = live_in | gen[name]
            if new_out != defined_out[name]:
                defined_out[name] = new_out
                changed = True
    defined_in = {}
    for block in function.blocks:
        name = block.name
        if name == function.entry.name:
            defined_in[name] = set(params)
        else:
            incoming = [defined_out[p] for p in preds[name]]
            if incoming:
                live_in = set(incoming[0])
                for s in incoming[1:]:
                    live_in &= s
                defined_in[name] = live_in | params
            else:
                defined_in[name] = set(universe)  # unreachable: skip checking
        defined_in[name] = defined_in[name]
    return defined_in


def _check_defs_before_use(function):
    """Every use must be preceded by a definition on all paths."""
    defined_in = _must_defined_in(function)
    for block in function.blocks:
        live = set(defined_in[block.name])
        for instr in block:
            for reg in instr.uses():
                if reg not in live:
                    _fail(
                        function,
                        block,
                        f"register %{reg.name} used before any definition "
                        f"in {instr!r}",
                    )
            live.update(instr.defs())


def verify_function(function, module=None, check_defs=True):
    """Verify one function; raises :class:`VerifierError` on violation."""
    if not function.blocks:
        _fail(function, None, "function has no blocks")
    _check_terminators(function)
    _check_targets(function, module)
    for block in function.blocks:
        for instr in block:
            _check_operand_shapes(function, block, instr)
    if check_defs:
        _check_defs_before_use(function)
    return True


def verify_module(module, check_defs=True):
    """Verify every function in the module."""
    for function in module:
        verify_function(function, module=module, check_defs=check_defs)
    return True
