"""Engine telemetry: layered counters, flight recorder, trace merging.

Pins the observability PR's contracts:

* the counter registry (snapshot/delta/merge/layers) and the hot-site
  increments each engine layer owes it;
* launches return their own counter view and fold it into the process
  registry;
* the flight recorder is a bounded ring whose post-mortem rides on
  launch failures, and recording never perturbs results;
* sinks are finalized on the error path so partial traces survive;
* Chrome-trace edge cases: empty traces, unclosed spans, and merged
  multi-worker streams with colliding warp tids;
* ``run_tasks_observed`` brings worker counters and events home;
* the ``tools.stats`` / ``tools.trace`` CLIs surface all of it.
"""

import json

import pytest

from repro import compile_kernel_source, compile_sr
from repro.errors import LaunchError, SimulationError
from repro.obs import IssueEvent, ListSink
from repro.obs import counters as obs_counters
from repro.obs.chrome_trace import (
    WORKER_PID_BASE,
    chrome_trace,
    merged_worker_trace,
    span_trace_events,
)
from repro.obs.counters import COUNTERS, ENGINE_COUNTERS, EngineCounters
from repro.obs.recorder import (
    FlightRecorder,
    dump_post_mortem,
    make_recorder,
    recorder_level,
    set_recorder_level,
)
from repro.obs.sinks import JsonlSink, ambient_sink, set_ambient_sink
from repro.obs.spans import Span
from repro.simt import GPUMachine
from repro.workloads import get_workload

DIVERGENT = """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..10 {
        if (hash01(t * 13.0 + i) < 0.3) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""


def _sr_module():
    return compile_sr(compile_kernel_source(DIVERGENT)).module


# ---------------------------------------------------------------------------
# Counter registry


class TestCounterRegistry:
    def test_snapshot_covers_every_registered_counter(self):
        snap = obs_counters.snapshot()
        assert set(snap) == set(COUNTERS)
        assert all(isinstance(v, int) for v in snap.values())

    def test_delta_and_merge_roundtrip(self):
        a = {"launch.count": 3, "pool.tasks": 5}
        b = {"launch.count": 1, "segments.fused_instrs": 2}
        moved = obs_counters.delta(a, b)
        assert moved["launch.count"] == 2
        assert moved["pool.tasks"] == 5
        assert moved["segments.fused_instrs"] == -2
        total = obs_counters.merge([a, b, {"launch.count": 10}])
        assert total["launch.count"] == 14
        assert total["pool.tasks"] == 5

    def test_registry_merge_ignores_unknown_keys(self):
        counters = EngineCounters()
        counters.merge({"launch.count": 2, "future.layer_thing": 9})
        assert counters.launch_count == 2
        counters.reset()
        assert counters.snapshot()["launch.count"] == 0

    def test_counter_layers_groups_and_derives_coverage(self):
        snap = {name: 0 for name in COUNTERS}
        snap["segments.fused_instrs"] = 75
        snap["segments.fallback_instrs"] = 25
        layers = obs_counters.counter_layers(snap)
        assert list(layers)[:5] == ["fastpath", "segments", "soa", "jit", "batch"]
        assert layers["segments"]["segments.coverage"] == pytest.approx(0.75)
        # Derived, never stored: raw snapshots stay integer-valued.
        assert "segments.coverage" not in obs_counters.snapshot()

    def test_decode_and_program_cache_counters_move(self):
        from repro.core.program_cache import PROGRAM_CACHE, compile_cached
        from repro.frontend.parser import compile_kernel_source as cks

        module = cks(DIVERGENT)
        PROGRAM_CACHE.clear()
        before = obs_counters.snapshot()
        compile_cached(module, mode="sr", threshold=8)
        compile_cached(module, mode="sr", threshold=8)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["program_cache.miss"] >= 1
        assert moved["program_cache.hit"] >= 1

    def test_launch_increments_global_registry(self):
        machine = GPUMachine(_sr_module())
        before = obs_counters.snapshot()
        machine.launch("k", 32)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["launch.count"] == 1
        assert moved["launch.errors"] == 0


# ---------------------------------------------------------------------------
# Launch-level counters


class TestLaunchCounters:
    def test_launch_result_carries_counters(self):
        result = GPUMachine(_sr_module()).launch("k", 32)
        assert isinstance(result.counters, dict)
        assert set(result.counters) >= {
            "segments.fused_instrs", "segments.fallback_instrs",
            "segments.coverage", "batch.epochs", "batch.rollbacks",
        }
        fused = result.counters["segments.fused_instrs"]
        fallback = result.counters["segments.fallback_instrs"]
        assert fused + fallback == result.profiler.issued

    def test_summary_includes_counters(self):
        result = GPUMachine(_sr_module()).launch("k", 32)
        summary = result.profiler.summary()
        assert summary["counters"] == result.counters

    def test_workload_run_exposes_counters(self):
        result = get_workload("mcb", steps=8).run(mode="sr")
        assert result.launch.counters["segments.fused_instrs"] >= 0


# ---------------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_bounds_and_orders_entries(self):
        recorder = FlightRecorder(kernel="k", n_threads=32, capacity=4)
        for i in range(10):
            recorder.record("tick", i)
        events = recorder.events()
        assert len(events) == 4
        assert [data for _, _, data in events] == [6, 7, 8, 9]
        assert [seq for seq, _, _ in events] == [6, 7, 8, 9]
        assert recorder.dropped == 6

    def test_post_mortem_structure(self):
        recorder = FlightRecorder(kernel="k", n_threads=8, capacity=8)
        recorder.record("launch", {"n_threads": 8})
        report = recorder.post_mortem(error=LaunchError("boom"))
        assert report["kernel"] == "k"
        assert report["recorded"] == 1 and report["dropped"] == 0
        assert report["events"][0]["kind"] == "launch"
        assert report["error"] == {"type": "LaunchError",
                                   "message": "boom"}
        assert "flight recorder" in recorder.describe()
        json.dumps(report)  # JSON-safe

    def test_make_recorder_levels(self):
        assert make_recorder("k", 8, level="off") is None
        assert make_recorder("k", 8, level=False) is None
        on = make_recorder("k", 8, level=True)
        assert on is not None and on.verbose is False
        assert make_recorder("k", 8, level="verbose").verbose is True

    def test_global_level_round_trips(self):
        previous = set_recorder_level("verbose")
        try:
            assert recorder_level() == "verbose"
            assert make_recorder("k", 8).verbose is True
        finally:
            set_recorder_level(previous)

    def test_launch_error_carries_post_mortem(self):
        machine = GPUMachine(_sr_module(), max_issues=20,
                             flight_recorder="on")
        before = obs_counters.snapshot()
        with pytest.raises(SimulationError) as excinfo:
            machine.launch("k", 32)
        report = excinfo.value.post_mortem
        assert report["kernel"] == "k" and report["n_threads"] == 32
        kinds = [entry["kind"] for entry in report["events"]]
        assert kinds[0] == "launch" and kinds[-1] == "error"
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["launch.errors"] == 1
        assert moved["launch.count"] == 0

    def test_post_mortem_env_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POST_MORTEM", str(tmp_path))
        machine = GPUMachine(_sr_module(), max_issues=20,
                             flight_recorder="on")
        with pytest.raises(SimulationError):
            machine.launch("k", 32)
        dumps = list(tmp_path.glob("postmortem-*.json"))
        assert len(dumps) == 1
        report = json.loads(dumps[0].read_text())
        assert report["error"]["type"] in ("LaunchError", "SimulationError")

    def test_dump_post_mortem_tags_reason(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POST_MORTEM", str(tmp_path))
        recorder = FlightRecorder(kernel="k", n_threads=8)
        recorder.record("epoch-rollback", {"streak": 3})
        report = dump_post_mortem(recorder, "guard-disable")
        assert report["reason"] == "guard-disable"
        assert list(tmp_path.glob("*guard-disable.json"))
        assert dump_post_mortem(None, "guard-disable") is None

    def test_recording_never_perturbs_results(self):
        module = _sr_module()
        plain = GPUMachine(module, flight_recorder=False).launch("k", 64)
        verbose = GPUMachine(module, flight_recorder="verbose").launch(
            "k", 64
        )
        assert verbose.store_traces() == plain.store_traces()
        assert verbose.cycles == plain.cycles
        assert verbose.simt_efficiency == plain.simt_efficiency
        # The verbose run retained a narrative; the plain one has none.
        assert verbose.flight_recorder is not None
        assert verbose.flight_recorder.seq > 0
        assert plain.flight_recorder is None


# ---------------------------------------------------------------------------
# Sinks: error-path finalization + ambient install


class TestSinkFinalization:
    def test_jsonl_sink_streams_and_closes_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        GPUMachine(_sr_module(), sink=sink).launch("k", 32)
        sink.close()
        sink.close()  # idempotent
        assert sink.closed and sink.emitted > 0
        lines = path.read_text().splitlines()
        assert len(lines) == sink.emitted
        assert all("kind" in json.loads(line) for line in lines)

    def test_sink_finalized_on_launch_error(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        sink = JsonlSink(str(path))
        machine = GPUMachine(_sr_module(), max_issues=20, sink=sink)
        with pytest.raises(SimulationError):
            machine.launch("k", 32)
        # The machine closed the sink, so the partial trace survives.
        assert sink.closed
        assert sink.emitted > 0
        assert len(path.read_text().splitlines()) == sink.emitted

    def test_ambient_sink_picked_up_by_machines(self):
        sink = ListSink()
        previous = set_ambient_sink(sink)
        try:
            assert ambient_sink() is sink
            GPUMachine(_sr_module()).launch("k", 32)
        finally:
            set_ambient_sink(previous)
        assert sink.events  # the launch streamed into the ambient sink
        # Restored: new launches no longer observe.
        assert ambient_sink() is previous


# ---------------------------------------------------------------------------
# Chrome trace edge cases


def _issue(warp_id, ts):
    return IssueEvent(
        warp_id=warp_id, function="f", block="b", index=0, opcode="add",
        lanes=frozenset({0, 1}), ts=ts, dur=1, active=2,
    )


class TestChromeTraceEdges:
    def test_empty_trace_is_loadable(self):
        data = chrome_trace(events=[])
        assert data["traceEvents"] != [] or data["traceEvents"] == []
        slices = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert slices == []
        json.dumps(data)

    def test_unclosed_span_clamped_not_dropped(self):
        closed = Span(name="ok", start=1.0, end=2.0)
        unclosed = Span(name="hung", start=5.0)  # end defaults before start
        entries = [e for e in span_trace_events([closed, unclosed])
                   if e.get("ph") == "X"]
        by_name = {e["name"]: e for e in entries}
        assert by_name["ok"]["dur"] == pytest.approx(1e6)
        assert by_name["hung"]["dur"] == 0.0
        assert by_name["hung"]["args"]["unclosed"] is True
        assert "unclosed" not in by_name["ok"]["args"]

    def test_merged_workers_get_distinct_pids(self):
        # Two workers whose warp ids (tids) collide on 0 and 1.
        worker_a = [_issue(0, 0), _issue(1, 2)]
        worker_b = [_issue(0, 1), _issue(1, 3)]
        data = merged_worker_trace([worker_a, worker_b],
                                   labels=["worker pid 11", None])
        slices = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        pids = {e["pid"] for e in slices}
        assert pids == {WORKER_PID_BASE, WORKER_PID_BASE + 1}
        # (pid, tid) pairs are unique even though tids repeat.
        keyed = {(e["pid"], e["tid"]) for e in slices}
        assert len(keyed) == 4
        names = [e["args"]["name"] for e in data["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"]
        assert any("worker pid 11" in n for n in names)
        assert any("worker 1" in n for n in names)
        assert data["otherData"]["workers"] == 2

    def test_merged_workers_accepts_generator(self):
        data = merged_worker_trace(
            iter([[_issue(0, 0)], [_issue(0, 1)]])
        )
        assert data["otherData"]["workers"] == 2


# ---------------------------------------------------------------------------
# Cross-worker aggregation


def _tiny_run(mode):
    result = get_workload("mcb", steps=6).run(mode=mode)
    return result.cycles


class TestObservedRunner:
    def test_serial_reports_counters(self):
        from repro.harness.parallel import run_tasks_observed, task

        results, reports = run_tasks_observed(
            [task(_tiny_run, "baseline"), task(_tiny_run, "sr")], jobs=1
        )
        assert len(results) == 2 and len(reports) == 2
        for report in reports:
            assert report["counters"]["launch.count"] == 1
            assert report["events"] == []
            assert isinstance(report["pid"], int)

    def test_pool_merges_worker_counters_into_parent(self):
        from repro.harness.parallel import (
            run_tasks_observed,
            shutdown_pool,
            task,
        )

        before = obs_counters.snapshot()
        try:
            results, reports = run_tasks_observed(
                [task(_tiny_run, m) for m in
                 ("baseline", "sr", "baseline", "sr")],
                jobs=2,
            )
        finally:
            shutdown_pool()
        assert len(results) == 4
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        # Worker-side launches came home into the parent registry.
        assert moved["launch.count"] >= 4
        assert moved["pool.tasks"] >= 4

    def test_events_capture_rides_the_report(self):
        from repro.harness.parallel import run_tasks_observed, task

        _, reports = run_tasks_observed(
            [task(_tiny_run, "sr")], jobs=1, events=True
        )
        events = reports[0]["events"]
        assert events, "events=True should capture the launch's stream"
        assert all(hasattr(e, "warp_id") for e in events)
        # The observing wrapper restored the ambient sink afterwards.
        assert ambient_sink() is None or not getattr(
            ambient_sink(), "events", None
        )


# ---------------------------------------------------------------------------
# CLIs


class TestStatsCLI:
    def test_single_workload_report(self, capsys):
        from repro.tools.stats import main

        assert main(["mcb", "--mode", "sr"]) == 0
        out = capsys.readouterr().out
        assert "Launch counters" in out
        assert "fused_instrs" in out and "segments" in out
        assert "Process counter delta" in out

    def test_sweep_json_and_diff(self, tmp_path, capsys):
        from repro.tools.stats import main

        snap_a = tmp_path / "a.json"
        snap_b = tmp_path / "b.json"
        assert main(["--sweep", "--workloads", "mcb",
                     "--json", str(snap_a)]) == 0
        assert main(["--sweep", "--workloads", "mcb", "funccall",
                     "--json", str(snap_b)]) == 0
        capsys.readouterr()
        saved = json.loads(snap_a.read_text())
        assert saved["kind"] == "repro.stats"
        assert saved["counters"]["launch.count"] == 2
        assert main(["--diff", str(snap_a), str(snap_b)]) == 0
        out = capsys.readouterr().out
        assert "Engine counter deltas" in out
        assert "launch" in out and "count" in out

    def test_sweep_writes_merged_trace(self, tmp_path, capsys):
        from repro.tools.stats import main

        trace_path = tmp_path / "merged.json"
        assert main(["--sweep", "--workloads", "mcb",
                     "--trace", str(trace_path)]) == 0
        data = json.loads(trace_path.read_text())
        assert data["otherData"]["workers"] >= 1
        assert any(e.get("ph") == "X" for e in data["traceEvents"])

    def test_diff_accepts_bench_records(self, tmp_path, capsys):
        from repro.tools.stats import main

        record = {"benchmark": "x", "speedup": 2.0,
                  "counters": {"launch.count": 5}}
        path_a = tmp_path / "bench_a.json"
        path_b = tmp_path / "bench_b.json"
        path_a.write_text(json.dumps(record))
        record["counters"]["launch.count"] = 9
        path_b.write_text(json.dumps(record))
        assert main(["--diff", str(path_a), str(path_b)]) == 0
        assert "+4" in capsys.readouterr().out

    def test_unknown_sweep_workload_errors(self):
        from repro.tools.stats import main

        with pytest.raises(SystemExit):
            main(["--sweep", "--workloads", "nope"])


class TestTraceCLISummary:
    def test_summary_includes_engine_counters(self, capsys):
        from repro.tools.trace import main

        assert main(["mcb", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "Engine counters" in out
        assert "fused_instrs" in out
